//! K-means clustering — the "statistical clustering algorithm applied to
//! the feature vectors in order to segment the image (e.g., to
//! distinguish between different rocks in the image)" (§2).

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster label per input vector.
    pub labels: Vec<usize>,
    /// Final cluster centroids (k × dim, row-major).
    pub centroids: Vec<f64>,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means with deterministic farthest-point initialisation.
///
/// `vectors` is row-major `n × dim`.
///
/// # Panics
///
/// Panics if `k == 0`, `dim == 0`, or fewer than `k` vectors are given.
pub fn kmeans(vectors: &[f64], dim: usize, k: usize, max_iters: usize) -> Clustering {
    assert!(dim > 0 && k > 0, "dim and k must be positive");
    let n = vectors.len() / dim;
    assert!(n >= k, "need at least k vectors");
    let row = |i: usize| &vectors[i * dim..(i + 1) * dim];

    // Deterministic k-means++-style spread: first centre is the vector
    // closest to the mean; each next is the farthest from chosen centres.
    let mut mean = vec![0.0; dim];
    for i in 0..n {
        for (m, v) in mean.iter_mut().zip(row(i)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    // NaN-tolerant comparisons throughout: corrupted inputs (injected
    // bit flips can produce NaN/inf) must yield a wrong clustering, not
    // a crash — the paper's app fails by "detectably incorrect output".
    //
    // The selection loops below are manual rewrites of `min_by`/`max_by`
    // that evaluate each distance once instead of re-deriving the
    // accumulator's key on every comparison. Tie semantics replicate the
    // iterator adapters exactly — `min_by` keeps the *first* minimum
    // (replace only on `Less`), `max_by` keeps the *last* maximum
    // (replace on anything but `Less`) — so the selected indices, and
    // with them the whole clustering, are bit-identical.
    use std::cmp::Ordering;
    let mut first = 0usize;
    let mut first_d = dist2(row(0), &mean);
    for i in 1..n {
        let d = dist2(row(i), &mean);
        if d.total_cmp(&first_d) == Ordering::Less {
            first = i;
            first_d = d;
        }
    }
    let mut centres = vec![first];
    // Distance from each vector to its nearest chosen centre, maintained
    // incrementally: the same `fold(f64::MAX, f64::min)` chain as
    // recomputing over all centres, one `min` link per new centre.
    let mut near: Vec<f64> =
        (0..n).map(|i| f64::min(f64::MAX, dist2(row(i), row(first)))).collect();
    while centres.len() < k {
        let mut next = 0usize;
        let mut next_d = near[0];
        for (i, &d) in near.iter().enumerate().skip(1) {
            if d.total_cmp(&next_d) != Ordering::Less {
                next = i;
                next_d = d;
            }
        }
        centres.push(next);
        if centres.len() < k {
            for (i, nd) in near.iter_mut().enumerate() {
                *nd = f64::min(*nd, dist2(row(i), row(next)));
            }
        }
    }
    let mut centroids: Vec<f64> = centres.iter().flat_map(|&c| row(c).to_vec()).collect();

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Assign: k distance evaluations per vector (the adapter form
        // cost 2(k-1) — both sides of every comparison).
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let v = row(i);
            let mut best = 0usize;
            let mut best_d = dist2(v, &centroids[..dim]);
            for c in 1..k {
                let d = dist2(v, &centroids[c * dim..(c + 1) * dim]);
                if d.total_cmp(&best_d) == Ordering::Less {
                    best = c;
                    best_d = d;
                }
            }
            if *label != best {
                *label = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0; k * dim];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[labels[i]] += 1;
            for d in 0..dim {
                sums[labels[i] * dim + d] += row(i)[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centroids[c * dim + d] = sums[c * dim + d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let inertia =
        (0..n).map(|i| dist2(row(i), &centroids[labels[i] * dim..(labels[i] + 1) * dim])).sum();
    Clustering { labels, centroids, iterations, inertia }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<f64> {
        // Deterministic ring of points around (cx, cy).
        (0..n)
            .flat_map(|i| {
                let ang = i as f64 * 0.7;
                vec![cx + spread * ang.cos(), cy + spread * ang.sin()]
            })
            .collect()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut data = blob(0.0, 0.0, 20, 0.3);
        data.extend(blob(10.0, 10.0, 20, 0.3));
        data.extend(blob(-10.0, 10.0, 20, 0.3));
        let result = kmeans(&data, 2, 3, 50);
        // All points of one blob share a label, and the three blobs have
        // three distinct labels.
        let l0 = result.labels[0];
        assert!(result.labels[..20].iter().all(|&l| l == l0));
        let l1 = result.labels[20];
        assert!(result.labels[20..40].iter().all(|&l| l == l1));
        let l2 = result.labels[40];
        assert!(result.labels[40..].iter().all(|&l| l == l2));
        assert_ne!(l0, l1);
        assert_ne!(l1, l2);
        assert_ne!(l0, l2);
    }

    #[test]
    fn converges_and_reports_inertia() {
        let mut data = blob(0.0, 0.0, 10, 0.1);
        data.extend(blob(5.0, 5.0, 10, 0.1));
        let result = kmeans(&data, 2, 2, 100);
        assert!(result.iterations < 100, "should converge early");
        assert!(result.inertia < 1.0, "tight blobs have tiny inertia");
    }

    #[test]
    fn deterministic_for_same_input() {
        let data = blob(1.0, 2.0, 30, 1.0);
        let a = kmeans(&data, 2, 4, 50);
        let b = kmeans(&data, 2, 4, 50);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![0.0, 0.0, 5.0, 5.0, 9.0, 1.0];
        let result = kmeans(&data, 2, 3, 10);
        assert!(result.inertia < 1e-12);
        let mut ls = result.labels.clone();
        ls.sort_unstable();
        assert_eq!(ls, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn too_few_vectors_panics() {
        let _ = kmeans(&[1.0, 2.0], 2, 2, 10);
    }
}
