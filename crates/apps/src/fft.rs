//! Radix-2 complex FFT — the "external FFT library" the texture filters
//! spend ~20 s per filter in (§3.3). This is real computation: the
//! texture features that drive segmentation are produced by these
//! transforms, so heap bit-flips in the image propagate through genuine
//! arithmetic to the application's output (Table 10).
//!
//! # Plans
//!
//! Profiling after PR 3 put the science kernels at ~55% of campaign CPU,
//! with the per-stage `cos`/`sin` calls and the per-butterfly
//! `w = w * wlen` recurrence of the naive transform high on the list
//! (see `docs/PERFORMANCE.md`). An [`FftPlan`] precomputes, once per
//! transform size:
//!
//! * the **bit-reversal permutation** (a table lookup instead of
//!   `reverse_bits` + shift per element), and
//! * the **twiddle factors** of every butterfly stage, forward and
//!   inverse, each evaluated directly as `exp(±2πik/len)` — slightly
//!   *more* accurate than the recurrence, which accumulates rounding
//!   with every multiplication.
//!
//! Plans are cached in a per-thread registry ([`FftPlan::for_size`]), so
//! the campaign's millions of 8×8 tile transforms share one 8-point
//! plan; [`fft`] fetches from the registry transparently and existing
//! callers keep their signature.
//!
//! ```
//! use ree_apps::fft::{fft, fft_unplanned, FftPlan};
//!
//! let signal: Vec<(f64, f64)> = (0..16).map(|i| (i as f64, 0.0)).collect();
//! let mut planned = signal.clone();
//! let mut naive = signal.clone();
//! fft(&mut planned, false); // plan fetched from the registry
//! fft_unplanned(&mut naive, false); // reference recurrence kernel
//! for (p, n) in planned.iter().zip(&naive) {
//!     assert!((p.0 - n.0).abs() < 1e-9 && (p.1 - n.1).abs() < 1e-9);
//! }
//! // The same plan instance can also be held and driven directly:
//! let plan = FftPlan::for_size(16);
//! let mut data = signal.clone();
//! plan.process(&mut data, false);
//! plan.process(&mut data, true); // round-trips back to the signal
//! assert!((data[3].0 - 3.0).abs() < 1e-9);
//! ```

use std::cell::RefCell;
use std::sync::Arc;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

fn cmul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// A precomputed radix-2 FFT plan for one transform size.
///
/// Holds the bit-reversal permutation and per-stage twiddle factors
/// (forward and inverse), so [`FftPlan::process`] performs no
/// trigonometry and no twiddle recurrence. Build directly with
/// [`FftPlan::new`] or fetch a cached instance with
/// [`FftPlan::for_size`].
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// `bitrev[i]` is the bit-reversed index of `i` (swap when `i < bitrev[i]`).
    bitrev: Vec<u32>,
    /// Forward twiddles, all stages flattened: the stage with butterfly
    /// span `len` (half `h = len/2`) occupies `fwd[h - 1 .. 2 * h - 1]`,
    /// entry `k` holding `exp(-2πik/len)`.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout, `exp(+2πik/len)`.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Precomputes a plan for `n`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
        let bits = n.trailing_zeros();
        let bitrev: Vec<u32> = (0..n)
            .map(|i| if n <= 1 { 0 } else { (i as u32).reverse_bits() >> (32 - bits) })
            .collect();
        // One twiddle per butterfly across all stages: 1 + 2 + … + n/2 = n - 1.
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut inv = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                let ang = 2.0 * std::f64::consts::PI * k as f64 / len as f64;
                fwd.push((ang.cos(), -ang.sin()));
                inv.push((ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        FftPlan { n, bitrev, fwd, inv }
    }

    /// The transform size this plan serves.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Fetches (building on first use) the cached plan for `n`-point
    /// transforms from the per-thread registry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn for_size(n: usize) -> Arc<FftPlan> {
        thread_local! {
            /// Sorted `(size, plan)` registry; a campaign touches only a
            /// couple of sizes, so a small sorted vec beats hashing.
            static REGISTRY: RefCell<Vec<(usize, Arc<FftPlan>)>> = const { RefCell::new(Vec::new()) };
        }
        REGISTRY.with(|cell| {
            let mut reg = cell.borrow_mut();
            match reg.binary_search_by_key(&n, |(size, _)| *size) {
                Ok(i) => Arc::clone(&reg[i].1),
                Err(i) => {
                    let plan = Arc::new(FftPlan::new(n));
                    reg.insert(i, (n, Arc::clone(&plan)));
                    plan
                }
            }
        })
    }

    /// In-place transform of `data` with this plan.
    ///
    /// `inverse` selects the inverse transform (scaled by `1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn process(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "plan is for {n}-point transforms");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let twiddles = if inverse { &self.inv } else { &self.fwd };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[half - 1..2 * half - 1];
            for chunk in data.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for i in 0..half {
                    let u = lo[i];
                    let v = cmul(hi[i], stage[i]);
                    lo[i] = cadd(u, v);
                    hi[i] = csub(u, v);
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for x in data.iter_mut() {
                x.0 *= scale;
                x.1 *= scale;
            }
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT, using the cached
/// [`FftPlan`] for `data.len()`.
///
/// `inverse` selects the inverse transform (scaled by `1/n`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    FftPlan::for_size(data.len()).process(data, inverse);
}

/// The original plan-free FFT: per-stage `cos`/`sin` plus the
/// per-butterfly `w = w * wlen` recurrence. Kept as the independent
/// reference implementation the [`FftPlan`] equivalence tests compare
/// against (`crates/apps/tests/fft_plan.rs`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_unplanned(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = (1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = cmul(chunk[i + half], w);
                chunk[i] = cadd(u, v);
                chunk[i + half] = csub(u, v);
                w = cmul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.0 *= scale;
            x.1 *= scale;
        }
    }
}

/// Forward FFT of a real signal; returns complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    fft(&mut data, false);
    data
}

/// 2-D FFT of a row-major `size`×`size` image (in place, rows then
/// columns).
///
/// # Panics
///
/// Panics if `size` is not a power of two or `data.len() != size*size`.
pub fn fft2d(data: &mut [Complex], size: usize, inverse: bool) {
    let plan = FftPlan::for_size(size);
    let mut col = vec![(0.0, 0.0); size];
    fft2d_with(&plan, data, inverse, &mut col);
}

/// [`fft2d`] driven by a caller-held plan and column scratch buffer —
/// the allocation-free form the tiled filter pipeline uses (one scratch
/// per [`crate::filters::FilterScratch`], reused across every tile).
///
/// # Panics
///
/// Panics if `data.len() != plan.size()²` or `col.len() != plan.size()`.
pub fn fft2d_with(plan: &FftPlan, data: &mut [Complex], inverse: bool, col: &mut [Complex]) {
    let size = plan.size();
    assert_eq!(data.len(), size * size, "image must be size*size");
    assert_eq!(col.len(), size, "column scratch must be one side long");
    // Rows.
    for row in data.chunks_mut(size) {
        plan.process(row, inverse);
    }
    // Columns (gather, transform, scatter).
    for c in 0..size {
        for r in 0..size {
            col[r] = data[r * size + c];
        }
        plan.process(col, inverse);
        for r in 0..size {
            data[r * size + c] = col[r];
        }
    }
}

/// Power (squared magnitude) of a spectrum element.
pub fn power(c: Complex) -> f64 {
    c.0 * c.0 + c.1 * c.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 16];
        signal[0] = 1.0;
        let spec = fft_real(&signal);
        for c in spec {
            assert_close(c.0, 1.0, 1e-12);
            assert_close(c.1, 0.0, 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        let powers: Vec<f64> = spec.iter().map(|&c| power(c)).collect();
        let max_bin = powers
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_bin, k);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
        fft(&mut data, false);
        fft(&mut data, true);
        for (orig, got) in signal.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
            assert_close(got.1, 0.0, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|&c| power(c)).sum::<f64>() / 64.0;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn fft2d_roundtrip() {
        let size = 16;
        let img: Vec<f64> = (0..size * size).map(|i| ((i * 13) % 7) as f64).collect();
        let mut data: Vec<Complex> = img.iter().map(|&x| (x, 0.0)).collect();
        fft2d(&mut data, size, false);
        fft2d(&mut data, size, true);
        for (orig, got) in img.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 12];
        fft(&mut d, false);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn unplanned_non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 12];
        fft_unplanned(&mut d, false);
    }

    #[test]
    fn registry_returns_the_same_plan_instance() {
        let a = FftPlan::for_size(32);
        let b = FftPlan::for_size(32);
        assert!(Arc::ptr_eq(&a, &b), "plans must be cached per size");
        assert_eq!(a.size(), 32);
    }

    #[test]
    fn trivial_sizes_are_identity() {
        let mut one = vec![(3.5, -1.0)];
        fft(&mut one, false);
        assert_eq!(one, vec![(3.5, -1.0)]);
    }
}
