//! Radix-2 complex FFT — the "external FFT library" the texture filters
//! spend ~20 s per filter in (§3.3). This is real computation: the
//! texture features that drive segmentation are produced by these
//! transforms, so heap bit-flips in the image propagate through genuine
//! arithmetic to the application's output (Table 10).

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

fn cmul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` selects the inverse transform (scaled by `1/n`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = (1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = cmul(chunk[i + half], w);
                chunk[i] = cadd(u, v);
                chunk[i + half] = csub(u, v);
                w = cmul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.0 *= scale;
            x.1 *= scale;
        }
    }
}

/// Forward FFT of a real signal; returns complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    fft(&mut data, false);
    data
}

/// 2-D FFT of a row-major `size`×`size` image (in place, rows then
/// columns).
///
/// # Panics
///
/// Panics if `size` is not a power of two or `data.len() != size*size`.
pub fn fft2d(data: &mut [Complex], size: usize, inverse: bool) {
    assert_eq!(data.len(), size * size, "image must be size*size");
    // Rows.
    for row in data.chunks_mut(size) {
        fft(row, inverse);
    }
    // Columns (gather, transform, scatter).
    let mut col = vec![(0.0, 0.0); size];
    for c in 0..size {
        for r in 0..size {
            col[r] = data[r * size + c];
        }
        fft(&mut col, inverse);
        for r in 0..size {
            data[r * size + c] = col[r];
        }
    }
}

/// Power (squared magnitude) of a spectrum element.
pub fn power(c: Complex) -> f64 {
    c.0 * c.0 + c.1 * c.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 16];
        signal[0] = 1.0;
        let spec = fft_real(&signal);
        for c in spec {
            assert_close(c.0, 1.0, 1e-12);
            assert_close(c.1, 0.0, 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        let powers: Vec<f64> = spec.iter().map(|&c| power(c)).collect();
        let max_bin = powers
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_bin, k);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
        fft(&mut data, false);
        fft(&mut data, true);
        for (orig, got) in signal.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
            assert_close(got.1, 0.0, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|&c| power(c)).sum::<f64>() / 64.0;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn fft2d_roundtrip() {
        let size = 16;
        let img: Vec<f64> = (0..size * size).map(|i| ((i * 13) % 7) as f64).collect();
        let mut data: Vec<Complex> = img.iter().map(|&x| (x, 0.0)).collect();
        fft2d(&mut data, size, false);
        fft2d(&mut data, size, true);
        for (orig, got) in img.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 12];
        fft(&mut d, false);
    }
}
