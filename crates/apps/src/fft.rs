//! Radix-2 complex FFT — the "external FFT library" the texture filters
//! spend ~20 s per filter in (§3.3). This is real computation: the
//! texture features that drive segmentation are produced by these
//! transforms, so heap bit-flips in the image propagate through genuine
//! arithmetic to the application's output (Table 10).
//!
//! # Plans
//!
//! Profiling after PR 3 put the science kernels at ~55% of campaign CPU,
//! with the per-stage `cos`/`sin` calls and the per-butterfly
//! `w = w * wlen` recurrence of the naive transform high on the list
//! (see `docs/PERFORMANCE.md`). An [`FftPlan`] precomputes, once per
//! transform size:
//!
//! * the **bit-reversal permutation** (a table lookup instead of
//!   `reverse_bits` + shift per element), and
//! * the **twiddle factors** of every butterfly stage, forward and
//!   inverse, each evaluated directly as `exp(±2πik/len)` — slightly
//!   *more* accurate than the recurrence, which accumulates rounding
//!   with every multiplication.
//!
//! Plans are cached in a per-thread registry ([`FftPlan::for_size`]), so
//! the campaign's millions of 8×8 tile transforms share one 8-point
//! plan; [`fft`] fetches from the registry transparently and existing
//! callers keep their signature.
//!
//! ```
//! use ree_apps::fft::{fft, fft_unplanned, FftPlan};
//!
//! let signal: Vec<(f64, f64)> = (0..16).map(|i| (i as f64, 0.0)).collect();
//! let mut planned = signal.clone();
//! let mut naive = signal.clone();
//! fft(&mut planned, false); // plan fetched from the registry
//! fft_unplanned(&mut naive, false); // reference recurrence kernel
//! for (p, n) in planned.iter().zip(&naive) {
//!     assert!((p.0 - n.0).abs() < 1e-9 && (p.1 - n.1).abs() < 1e-9);
//! }
//! // The same plan instance can also be held and driven directly:
//! let plan = FftPlan::for_size(16);
//! let mut data = signal.clone();
//! plan.process(&mut data, false);
//! plan.process(&mut data, true); // round-trips back to the signal
//! assert!((data[3].0 - 3.0).abs() < 1e-9);
//! ```

use std::cell::RefCell;
use std::sync::Arc;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

fn cmul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// A precomputed radix-2 FFT plan for one transform size.
///
/// Holds the bit-reversal permutation and per-stage twiddle factors
/// (forward and inverse), so [`FftPlan::process`] performs no
/// trigonometry and no twiddle recurrence. Build directly with
/// [`FftPlan::new`] or fetch a cached instance with
/// [`FftPlan::for_size`].
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation as explicit swap pairs `(i, j)` with
    /// `i < j` — only the elements that actually move, so the permutation
    /// loop runs `n/2 - ~√n` iterations with no branch, instead of `n`
    /// iterations testing `i < bitrev[i]`.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, all stages flattened: the stage with butterfly
    /// span `len` (half `h = len/2`) occupies `fwd[h - 1 .. 2 * h - 1]`,
    /// entry `k` holding `exp(-2πik/len)`.
    fwd: Vec<Complex>,
    /// Inverse twiddles, same layout, `exp(+2πik/len)`.
    inv: Vec<Complex>,
}

/// Butterfly lane width for [`FftPlan::process`]: stages with at least
/// this many butterflies per chunk run in fixed-trip-count blocks that
/// the compiler unrolls and vectorises. 4 complex values = one 512-bit
/// lane pair on AVX2 (4×2 f64 registers).
const LANES: usize = 4;

impl FftPlan {
    /// Precomputes a plan for `n`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
        let bits = n.trailing_zeros();
        let swaps: Vec<(u32, u32)> = (0..n)
            .filter_map(|i| {
                if n <= 1 {
                    return None;
                }
                let j = (i as u32).reverse_bits() >> (32 - bits);
                ((i as u32) < j).then_some((i as u32, j))
            })
            .collect();
        // One twiddle per butterfly across all stages: 1 + 2 + … + n/2 = n - 1.
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut inv = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                let ang = 2.0 * std::f64::consts::PI * k as f64 / len as f64;
                fwd.push((ang.cos(), -ang.sin()));
                inv.push((ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        FftPlan { n, swaps, fwd, inv }
    }

    /// The transform size this plan serves.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Fetches (building on first use) the cached plan for `n`-point
    /// transforms from the per-thread registry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn for_size(n: usize) -> Arc<FftPlan> {
        thread_local! {
            /// Sorted `(size, plan)` registry; a campaign touches only a
            /// couple of sizes, so a small sorted vec beats hashing.
            static REGISTRY: RefCell<Vec<(usize, Arc<FftPlan>)>> = const { RefCell::new(Vec::new()) };
        }
        REGISTRY.with(|cell| {
            let mut reg = cell.borrow_mut();
            match reg.binary_search_by_key(&n, |(size, _)| *size) {
                Ok(i) => Arc::clone(&reg[i].1),
                Err(i) => {
                    let plan = Arc::new(FftPlan::new(n));
                    reg.insert(i, (n, Arc::clone(&plan)));
                    plan
                }
            }
        })
    }

    /// In-place transform of `data` with this plan.
    ///
    /// `inverse` selects the inverse transform (scaled by `1/n`).
    ///
    /// Every output element is produced by exactly the same sequence of
    /// floating-point operations as the straightforward scalar loop
    /// (`process_generic`), so results are bit-identical across the
    /// unrolled 8-point path, the lane-blocked path, and the scalar
    /// path — including on non-finite inputs, which injected bit flips
    /// produce. In particular no twiddle multiply is ever algebraically
    /// simplified: `cmul(x, (1.0, -0.0))` differs from `x` when `x` is
    /// infinite or NaN.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn process(&self, data: &mut [Complex], inverse: bool) {
        if self.n == 8 {
            // The texture filters transform millions of 8-point rows per
            // campaign; a straight-line kernel keeps them in registers.
            self.process8(data, inverse);
        } else {
            self.process_generic(data, inverse);
        }
    }

    /// The structured (non-unrolled) kernel every size runs through,
    /// except the sizes with dedicated straight-line paths. Public to the
    /// crate's tests so bit-equivalence with the specialised paths can be
    /// asserted directly.
    #[doc(hidden)]
    pub fn process_generic(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "plan is for {n}-point transforms");
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let twiddles = if inverse { &self.inv } else { &self.fwd };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[half - 1..2 * half - 1];
            if half < LANES {
                for chunk in data.chunks_exact_mut(len) {
                    let (lo, hi) = chunk.split_at_mut(half);
                    for i in 0..half {
                        let u = lo[i];
                        let v = cmul(hi[i], stage[i]);
                        lo[i] = cadd(u, v);
                        hi[i] = csub(u, v);
                    }
                }
            } else {
                // `half` is a power of two ≥ LANES, so the lane blocks
                // tile the stage exactly (no remainder loop). The fixed
                // trip count and bounds-check-free fixed-size blocks are
                // what lets the compiler emit SIMD here.
                for chunk in data.chunks_exact_mut(len) {
                    let (lo, hi) = chunk.split_at_mut(half);
                    for ((lo_b, hi_b), w_b) in lo
                        .chunks_exact_mut(LANES)
                        .zip(hi.chunks_exact_mut(LANES))
                        .zip(stage.chunks_exact(LANES))
                    {
                        for l in 0..LANES {
                            let u = lo_b[l];
                            let v = cmul(hi_b[l], w_b[l]);
                            lo_b[l] = cadd(u, v);
                            hi_b[l] = csub(u, v);
                        }
                    }
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for x in data.iter_mut() {
                x.0 *= scale;
                x.1 *= scale;
            }
        }
    }

    /// Fully unrolled 8-point transform: the same swaps and butterflies
    /// as `process_generic`, in the same order, as straight-line code.
    fn process8(&self, data: &mut [Complex], inverse: bool) {
        assert_eq!(data.len(), 8, "plan is for 8-point transforms");
        #[inline(always)]
        fn bf(data: &mut [Complex], a: usize, b: usize, w: Complex) {
            let u = data[a];
            let v = cmul(data[b], w);
            data[a] = cadd(u, v);
            data[b] = csub(u, v);
        }
        // Bit-reversal of 0..8 moves exactly two pairs.
        data.swap(1, 4);
        data.swap(3, 6);
        let tw = if inverse { &self.inv } else { &self.fwd };
        // Stage len=2 (twiddle tw[0]), then len=4 (tw[1..3]), then
        // len=8 (tw[3..7]) — the flattened `h-1..2h-1` layout.
        bf(data, 0, 1, tw[0]);
        bf(data, 2, 3, tw[0]);
        bf(data, 4, 5, tw[0]);
        bf(data, 6, 7, tw[0]);
        bf(data, 0, 2, tw[1]);
        bf(data, 1, 3, tw[2]);
        bf(data, 4, 6, tw[1]);
        bf(data, 5, 7, tw[2]);
        bf(data, 0, 4, tw[3]);
        bf(data, 1, 5, tw[4]);
        bf(data, 2, 6, tw[5]);
        bf(data, 3, 7, tw[6]);
        if inverse {
            let scale = 1.0 / 8.0;
            for x in data.iter_mut() {
                x.0 *= scale;
                x.1 *= scale;
            }
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT, using the cached
/// [`FftPlan`] for `data.len()`.
///
/// `inverse` selects the inverse transform (scaled by `1/n`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex], inverse: bool) {
    FftPlan::for_size(data.len()).process(data, inverse);
}

/// The original plan-free FFT: per-stage `cos`/`sin` plus the
/// per-butterfly `w = w * wlen` recurrence. Kept as the independent
/// reference implementation the [`FftPlan`] equivalence tests compare
/// against (`crates/apps/tests/fft_plan.rs`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_unplanned(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = (1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = cmul(chunk[i + half], w);
                chunk[i] = cadd(u, v);
                chunk[i + half] = csub(u, v);
                w = cmul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.0 *= scale;
            x.1 *= scale;
        }
    }
}

/// Forward FFT of a real signal; returns complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    fft(&mut data, false);
    data
}

/// 2-D FFT of a row-major `size`×`size` image (in place, rows then
/// columns).
///
/// # Panics
///
/// Panics if `size` is not a power of two or `data.len() != size*size`.
pub fn fft2d(data: &mut [Complex], size: usize, inverse: bool) {
    fft2d_with(&FftPlan::for_size(size), data, inverse);
}

/// Transpose block side: 8 complex values per row = 128 bytes = two
/// cache lines, so a block pair stays resident while it is exchanged.
const TRANSPOSE_BLOCK: usize = 8;

/// In-place transpose of a row-major `size`×`size` matrix, walked in
/// cache-sized blocks.
fn transpose(data: &mut [Complex], size: usize) {
    let b = TRANSPOSE_BLOCK;
    let mut rb = 0;
    while rb < size {
        let r_end = (rb + b).min(size);
        // Diagonal block: swap its strict upper triangle.
        for r in rb..r_end {
            for c in (r + 1)..r_end {
                data.swap(r * size + c, c * size + r);
            }
        }
        // Off-diagonal block pairs.
        let mut cb = rb + b;
        while cb < size {
            let c_end = (cb + b).min(size);
            for r in rb..r_end {
                for c in cb..c_end {
                    data.swap(r * size + c, c * size + r);
                }
            }
            cb += b;
        }
        rb += b;
    }
}

/// [`fft2d`] driven by a caller-held plan — the allocation-free form the
/// tiled filter pipeline uses.
///
/// The column pass runs as transpose → contiguous row transforms →
/// transpose back, instead of gathering each column through a strided
/// scratch buffer: the transforms then stream cache lines linearly, and
/// the blocked transpose touches each line once. Each column still
/// receives the identical 1-D transform on identical values, so the
/// result is bit-exact with the gather/scatter formulation (asserted in
/// `crates/apps/tests/fft_plan.rs`).
///
/// # Panics
///
/// Panics if `data.len() != plan.size()²`.
pub fn fft2d_with(plan: &FftPlan, data: &mut [Complex], inverse: bool) {
    let size = plan.size();
    assert_eq!(data.len(), size * size, "image must be size*size");
    // Rows.
    for row in data.chunks_mut(size) {
        plan.process(row, inverse);
    }
    // Columns, as rows of the transpose.
    transpose(data, size);
    for row in data.chunks_mut(size) {
        plan.process(row, inverse);
    }
    transpose(data, size);
}

/// Power (squared magnitude) of a spectrum element.
pub fn power(c: Complex) -> f64 {
    c.0 * c.0 + c.1 * c.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 16];
        signal[0] = 1.0;
        let spec = fft_real(&signal);
        for c in spec {
            assert_close(c.0, 1.0, 1e-12);
            assert_close(c.1, 0.0, 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        let powers: Vec<f64> = spec.iter().map(|&c| power(c)).collect();
        let max_bin = powers
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_bin, k);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
        fft(&mut data, false);
        fft(&mut data, true);
        for (orig, got) in signal.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
            assert_close(got.1, 0.0, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|&c| power(c)).sum::<f64>() / 64.0;
        assert_close(time_energy, freq_energy, 1e-9);
    }

    #[test]
    fn fft2d_roundtrip() {
        let size = 16;
        let img: Vec<f64> = (0..size * size).map(|i| ((i * 13) % 7) as f64).collect();
        let mut data: Vec<Complex> = img.iter().map(|&x| (x, 0.0)).collect();
        fft2d(&mut data, size, false);
        fft2d(&mut data, size, true);
        for (orig, got) in img.iter().zip(&data) {
            assert_close(got.0, *orig, 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 12];
        fft(&mut d, false);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn unplanned_non_power_of_two_panics() {
        let mut d = vec![(0.0, 0.0); 12];
        fft_unplanned(&mut d, false);
    }

    #[test]
    fn registry_returns_the_same_plan_instance() {
        let a = FftPlan::for_size(32);
        let b = FftPlan::for_size(32);
        assert!(Arc::ptr_eq(&a, &b), "plans must be cached per size");
        assert_eq!(a.size(), 32);
    }

    #[test]
    fn trivial_sizes_are_identity() {
        let mut one = vec![(3.5, -1.0)];
        fft(&mut one, false);
        assert_eq!(one, vec![(3.5, -1.0)]);
    }

    /// Deterministic pseudo-random doubles for bit-exactness checks.
    fn lcg_signal(n: usize, mut state: u64) -> Vec<Complex> {
        (0..n)
            .map(|_| {
                let mut next = || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 100.0 - 50.0
                };
                (next(), next())
            })
            .collect()
    }

    #[test]
    fn unrolled_8_point_is_bit_exact_with_generic() {
        let plan = FftPlan::new(8);
        for seed in 0..64u64 {
            for inverse in [false, true] {
                let signal = lcg_signal(8, seed + 1);
                let mut unrolled = signal.clone();
                let mut generic = signal;
                plan.process8(&mut unrolled, inverse);
                plan.process_generic(&mut generic, inverse);
                assert_eq!(unrolled, generic, "seed {seed} inverse {inverse}");
            }
        }
    }

    #[test]
    fn unrolled_8_point_matches_generic_on_non_finite_inputs() {
        // Injected bit flips can produce ±∞/NaN mid-tile; the specialised
        // path must propagate them through the identical FP expressions.
        let plan = FftPlan::new(8);
        for (poison_idx, poison) in
            [(0, f64::INFINITY), (3, f64::NEG_INFINITY), (5, f64::NAN), (7, f64::MAX)]
        {
            for inverse in [false, true] {
                let mut signal = lcg_signal(8, 99);
                signal[poison_idx].0 = poison;
                let mut unrolled = signal.clone();
                let mut generic = signal;
                plan.process8(&mut unrolled, inverse);
                plan.process_generic(&mut generic, inverse);
                // Compare bit patterns so NaN positions must agree too.
                let bits = |v: &[Complex]| -> Vec<(u64, u64)> {
                    v.iter().map(|c| (c.0.to_bits(), c.1.to_bits())).collect()
                };
                assert_eq!(bits(&unrolled), bits(&generic), "poison at {poison_idx}");
            }
        }
    }

    #[test]
    fn transpose_involution_and_layout() {
        for size in [1usize, 2, 4, 8, 16, 32] {
            let original: Vec<Complex> =
                (0..size * size).map(|i| (i as f64, -(i as f64))).collect();
            let mut data = original.clone();
            transpose(&mut data, size);
            for r in 0..size {
                for c in 0..size {
                    assert_eq!(data[c * size + r], original[r * size + c]);
                }
            }
            transpose(&mut data, size);
            assert_eq!(data, original);
        }
    }
}
