//! Synthetic instrument data.
//!
//! The real missions' data (Mars Rover camera frames, OTIS thermal
//! imagery) are unavailable; per the substitution rule we generate
//! deterministic synthetic equivalents that exercise the same code paths:
//! Mars surface images are piecewise-textured (distinct orientation and
//! frequency per region, so directional texture filters genuinely
//! separate them), and thermal frames have smooth temperature fields with
//! atmospheric attenuation applied per split-window band.
//!
//! # Campaign-shared inputs
//!
//! Input generation is a pure function of its parameters, and a campaign
//! re-runs the same scenario thousands of times — so the synthetic
//! inputs are identical across every run of a campaign (the per-run seed
//! perturbs fault injection and timing, **not** the instrument data).
//! [`mars_surface_shared`] and [`thermal_frame_shared`] memoize the
//! generated data process-wide behind `Arc`s keyed by the generation
//! parameters; runs receive shared read-only data and copy-on-write into
//! their own science heap before fault injection can mutate anything
//! (see `SciHeap` — heap bit flips land in the run's private copy).
//! `Scenario::warm_inputs` pre-populates the cache before a campaign
//! fans out across worker threads.

use ree_sim::SimRng;
use std::sync::{Arc, Mutex};

/// Bound on each shared-input cache (entries, not bytes). Campaigns use
/// a handful of inputs; the bound only matters for long-lived processes
/// sweeping many configurations.
const SHARED_CACHE_CAP: usize = 64;

/// A process-wide memo table: a mutex-guarded sorted small-vec from key
/// to `Arc`'d value. Lookup is a binary search; the lock is held only
/// for the lookup/insert (generation happens outside it, so two threads
/// may race to generate the same entry once — both get identical data).
/// Also backs the memoized verification reference in [`crate::verify`].
pub(crate) struct SharedCache<K, V: ?Sized> {
    entries: Mutex<Vec<(K, Arc<V>)>>,
}

impl<K: Ord + Copy, V: ?Sized> SharedCache<K, V> {
    pub(crate) const fn new() -> Self {
        SharedCache { entries: Mutex::new(Vec::new()) }
    }

    pub(crate) fn get_or_insert_with(&self, key: K, generate: impl FnOnce() -> Arc<V>) -> Arc<V> {
        {
            let entries = self.entries.lock().expect("shared-input cache poisoned");
            if let Ok(i) = entries.binary_search_by_key(&key, |(k, _)| *k) {
                return Arc::clone(&entries[i].1);
            }
        }
        let value = generate();
        let mut entries = self.entries.lock().expect("shared-input cache poisoned");
        match entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Arc::clone(&entries[i].1), // lost the race; share the winner
            Err(_) => {
                if entries.len() >= SHARED_CACHE_CAP {
                    // Evict the smallest key — campaigns revisit a tiny
                    // working set, so any eviction policy is fine.
                    entries.remove(0);
                }
                let i = entries
                    .binary_search_by_key(&key, |(k, _)| *k)
                    .expect_err("key absent after miss");
                entries.insert(i, (key, Arc::clone(&value)));
                value
            }
        }
    }
}

/// A row-major square grayscale image.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    /// Side length in pixels (power of two).
    pub size: usize,
    /// Pixel values.
    pub pixels: Vec<f64>,
}

impl Image {
    /// Pixel accessor.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.pixels[row * self.size + col]
    }

    /// Serialises to little-endian bytes (stable-storage format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pixels.len() * 8);
        out.extend_from_slice(&(self.size as u64).to_le_bytes());
        for p in &self.pixels {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Parses the stable-storage format.
    pub fn from_bytes(bytes: &[u8]) -> Option<Image> {
        if bytes.len() < 8 {
            return None;
        }
        let size = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
        if size == 0 || size > 4096 {
            return None;
        }
        let need = 8 + size * size * 8;
        if bytes.len() != need {
            return None;
        }
        let pixels = bytes[8..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Some(Image { size, pixels })
    }
}

/// Ground-truth region layout of a synthetic Mars image: quadrants with
/// distinct textures (the texture program's job is to recover this
/// segmentation).
pub fn mars_region_of(size: usize, row: usize, col: usize) -> usize {
    let half = size / 2;
    match (row < half, col < half) {
        (true, true) => 0,   // fine-grained rock, horizontal grain
        (true, false) => 1,  // coarse boulders, vertical grain
        (false, true) => 2,  // wind-rippled sand, diagonal grain
        (false, false) => 3, // smooth dust plain
    }
}

/// Generates a synthetic Mars surface image: four textured quadrants
/// (orientation/frequency differ per region) plus correlated noise.
pub fn mars_surface(size: usize, seed: u64) -> Image {
    assert!(size.is_power_of_two(), "image size must be a power of two");
    let mut rng = SimRng::new(seed ^ 0x4d41_5253); // "MARS"
    let mut pixels = vec![0.0; size * size];
    for row in 0..size {
        for col in 0..size {
            let (fx, fy, amp, base) = match mars_region_of(size, row, col) {
                0 => (0.9, 0.05, 1.0, 0.3),
                1 => (0.05, 0.45, 1.2, 0.5),
                2 => (0.35, 0.35, 0.8, 0.4),
                _ => (0.02, 0.02, 0.15, 0.6),
            };
            let x = col as f64;
            let y = row as f64;
            let texture = (fx * x).sin() * (fy * y).cos() * amp;
            let noise = (rng.f64() - 0.5) * 0.2;
            pixels[row * size + col] = base + texture + noise;
        }
    }
    Image { size, pixels }
}

/// [`mars_surface`] through the campaign-shared input cache: the image
/// for a given `(size, seed)` is generated once per process and every
/// caller receives the same `Arc`. Mutating consumers (the science
/// heap) clone the pixels out — copy-on-write at the injection boundary.
///
/// ```
/// use ree_apps::synth::{mars_surface, mars_surface_shared};
/// let a = mars_surface_shared(32, 7);
/// let b = mars_surface_shared(32, 7);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(*a, mars_surface(32, 7));
/// ```
pub fn mars_surface_shared(size: usize, seed: u64) -> std::sync::Arc<Image> {
    static CACHE: SharedCache<(usize, u64), Image> = SharedCache::new();
    CACHE.get_or_insert_with((size, seed), || Arc::new(mars_surface(size, seed)))
}

/// One OTIS thermal frame: two split-window band radiances plus the
/// ground-truth surface temperature field used by verification.
#[derive(Clone, Debug)]
pub struct ThermalFrame {
    /// Side length in pixels.
    pub size: usize,
    /// Band-11 µm radiance-equivalent brightness temperatures (K).
    pub band11: Vec<f64>,
    /// Band-12 µm radiance-equivalent brightness temperatures (K).
    pub band12: Vec<f64>,
    /// True surface temperature (K) — synthetic ground truth.
    pub truth: Vec<f64>,
}

/// Generates a synthetic thermal frame with a smooth temperature field
/// and band-dependent atmospheric attenuation (water-vapour path).
pub fn thermal_frame(size: usize, seed: u64, frame_index: u32) -> ThermalFrame {
    let mut rng = SimRng::new(seed ^ 0x4f54_4953 ^ (frame_index as u64) << 32); // "OTIS"
    let n = size * size;
    let mut truth = vec![0.0; n];
    let mut band11 = vec![0.0; n];
    let mut band12 = vec![0.0; n];
    // Smooth temperature field: blobs + gradient.
    let cx = size as f64 * (0.3 + 0.4 * rng.f64());
    let cy = size as f64 * (0.3 + 0.4 * rng.f64());
    let wv = 1.0 + 2.0 * rng.f64(); // water-vapour burden (g/cm^2)
    for row in 0..size {
        for col in 0..size {
            let x = col as f64;
            let y = row as f64;
            let d2 = ((x - cx).powi(2) + (y - cy).powi(2)) / (size as f64).powi(2);
            let t = 285.0 + 18.0 * (-6.0 * d2).exp() + 0.02 * y + (rng.f64() - 0.5);
            truth[row * size + col] = t;
            // Split-window physics (simplified): band-dependent
            // attenuation proportional to water vapour; band 12 is
            // attenuated more than band 11.
            band11[row * size + col] = t - 1.2 * wv - 0.4;
            band12[row * size + col] = t - 2.1 * wv - 0.6;
        }
    }
    ThermalFrame { size, band11, band12, truth }
}

/// [`thermal_frame`] through the campaign-shared input cache (see
/// [`mars_surface_shared`]). The OTIS ranks clone band vectors out of
/// the shared frame into their mutable science heap; the verifier reads
/// the shared frame directly.
pub fn thermal_frame_shared(size: usize, seed: u64, frame_index: u32) -> Arc<ThermalFrame> {
    static CACHE: SharedCache<(usize, u64, u32), ThermalFrame> = SharedCache::new();
    CACHE.get_or_insert_with((size, seed, frame_index), || {
        Arc::new(thermal_frame(size, seed, frame_index))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mars_image_is_deterministic() {
        let a = mars_surface(32, 7);
        let b = mars_surface(32, 7);
        assert_eq!(a, b);
        let c = mars_surface(32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mars_regions_cover_quadrants() {
        assert_eq!(mars_region_of(64, 0, 0), 0);
        assert_eq!(mars_region_of(64, 0, 63), 1);
        assert_eq!(mars_region_of(64, 63, 0), 2);
        assert_eq!(mars_region_of(64, 63, 63), 3);
    }

    #[test]
    fn image_bytes_roundtrip() {
        let img = mars_surface(16, 3);
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn image_bytes_rejects_garbage() {
        assert!(Image::from_bytes(&[1, 2, 3]).is_none());
        let mut bytes = mars_surface(16, 3).to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Image::from_bytes(&bytes).is_none());
    }

    #[test]
    fn quadrants_have_distinct_texture_statistics() {
        let img = mars_surface(64, 5);
        // Mean absolute horizontal gradient differs between the
        // fine-grained quadrant (0) and the smooth plain (3).
        let grad = |r0: usize, c0: usize| {
            let mut total = 0.0;
            for r in r0..r0 + 31 {
                for c in c0..c0 + 31 {
                    total += (img.at(r, c + 1) - img.at(r, c)).abs();
                }
            }
            total / (31.0 * 31.0)
        };
        let fine = grad(0, 0);
        let smooth = grad(32, 32);
        assert!(fine > smooth * 2.0, "fine {fine} vs smooth {smooth}");
    }

    #[test]
    fn thermal_bands_are_attenuated_consistently() {
        let f = thermal_frame(32, 9, 0);
        for i in 0..f.truth.len() {
            assert!(f.band11[i] < f.truth[i], "band 11 must be attenuated");
            assert!(f.band12[i] < f.band11[i], "band 12 attenuated more than band 11");
        }
    }

    #[test]
    fn thermal_frames_differ_by_index() {
        let a = thermal_frame(32, 9, 0);
        let b = thermal_frame(32, 9, 1);
        assert_ne!(a.truth, b.truth);
    }

    #[test]
    fn shared_thermal_frame_matches_direct_generation() {
        let shared = thermal_frame_shared(16, 21, 2);
        let direct = thermal_frame(16, 21, 2);
        assert_eq!(shared.truth, direct.truth);
        assert_eq!(shared.band11, direct.band11);
        assert!(Arc::ptr_eq(&shared, &thermal_frame_shared(16, 21, 2)));
    }

    #[test]
    fn shared_cache_is_bounded_and_still_correct_after_eviction() {
        // Push well past the cap with distinct seeds, then confirm an
        // evicted entry regenerates identically.
        let first = mars_surface_shared(8, 1_000_000);
        let first_copy = Image { size: first.size, pixels: first.pixels.clone() };
        for seed in 1_000_001..1_000_200u64 {
            let _ = mars_surface_shared(8, seed);
        }
        let again = mars_surface_shared(8, 1_000_000);
        assert_eq!(*again, first_copy);
    }
}
