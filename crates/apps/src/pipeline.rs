//! The image-acquisition pipeline: a topology-placed camera → compute →
//! downlink workload.
//!
//! The REE mission software the paper targets is dominated by dataflow
//! pipelines: an instrument acquires frames, an onboard compute stage
//! calibrates and compresses them, and a downlink stage stores the
//! products for transmission. Unlike the texture/OTIS workloads (whose
//! ranks compute independently from shared inputs and only exchange
//! small calibration summaries), this pipeline streams whole frames
//! between ranks — so its behaviour under injection depends on *where*
//! the ranks sit in the interconnect topology. `Scenario::image_pipeline`
//! places the downlink rank across a constrained trunk link, making the
//! pipeline the natural workload for partition and link-fault
//! experiments (see `docs/NETWORK.md`).
//!
//! Three ranks, lockstep per frame, with rank 0 as the hub (the MPI
//! shell's peer discovery gives non-zero ranks only rank 0's address —
//! the same star that a command-and-data-handling computer imposes):
//!
//! * **rank 0 — camera**: acquires frame `f` (virtual CPU), loads the
//!   pixels into its science heap, streams them to compute, forwards the
//!   returned product across the trunk to the downlink rank, and waits
//!   for the downlink's acknowledgement before acquiring `f+1`
//!   (re-sending after `block_timeout` if a reply never comes — the
//!   self-healing path after a mid-stream rank restart);
//! * **rank 1 — compute**: radiometric calibration over the (possibly
//!   corrupted) heap copy, then lossless compression; stateless between
//!   frames, so a restart only costs the frame in flight;
//! * **rank 2 — downlink**: persists each product to the remote store,
//!   acknowledges to the camera, and declares the job finished once
//!   every frame is on disk (recovering its progress after restart by
//!   scanning which products already exist).

use crate::compress::{compress, quantize};
use crate::heap::SciHeap;
use crate::shell::{AppShell, ShellPoll};
use crate::synth::thermal_frame_shared;
use ree_mpi::MpiPayload;
use ree_os::{HeapHit, HeapModel, HeapTarget, Message, ProcCtx, Process, Signal, TimerId};
use ree_sift::AppLaunch;
use ree_sim::{SimDuration, SimRng};

/// Tunable workload parameters for the image pipeline.
#[derive(Clone, Debug)]
pub struct PipelineParams {
    /// Frame side in pixels.
    pub frame_px: usize,
    /// Frames to acquire, process, and downlink.
    pub frames: u32,
    /// Virtual CPU time to acquire one frame (exposure + readout).
    pub acquire_time: SimDuration,
    /// Virtual CPU time to calibrate and compress one frame.
    pub process_time: SimDuration,
    /// Virtual CPU time to persist one product.
    pub downlink_time: SimDuration,
    /// Progress-indicator declaration period. Must exceed one full
    /// frame round trip: each rank progresses once per frame.
    pub pi_period: SimDuration,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            frame_px: 32,
            frames: 6,
            acquire_time: SimDuration::from_secs(6),
            process_time: SimDuration::from_secs(14),
            downlink_time: SimDuration::from_secs(4),
            pi_period: SimDuration::from_secs(45),
        }
    }
}

impl PipelineParams {
    /// Expected failure-free actual execution time. The stages are
    /// ack-gated per frame, so the pipeline does not overlap frames;
    /// nominal is the serial sum.
    pub fn nominal(&self) -> SimDuration {
        (self.acquire_time + self.process_time + self.downlink_time) * self.frames as u64
    }
}

/// Dark-current offset removed by calibration (synthetic detector
/// model; Kelvin).
pub const DARK_OFFSET: f64 = 1.25;
/// Flat-field gain applied by calibration.
pub const FLAT_GAIN: f64 = 1.015;

/// Radiometric calibration: dark-current subtraction plus flat-field
/// gain, per pixel. Pure — verification recomputes it exactly.
pub fn radiometric_calibrate(raw: &[f64]) -> Vec<f64> {
    raw.iter().map(|&x| (x - DARK_OFFSET) * FLAT_GAIN).collect()
}

/// Deterministic frame-sequence seed for (app, slot).
pub fn pipeline_frame_seed(app: &str, slot: u32) -> u64 {
    let mut h: u64 = 0x696d_6770;
    for b in app.bytes() {
        h = h.rotate_left(9) ^ b as u64;
    }
    h ^ ((slot as u64) << 28)
}

const WORK_PHASE: u64 = 1;
/// Camera re-send timer tag (distinct from `shell::SHELL_TICK`).
const RETRY_TICK: u64 = 0x9E7A;
/// Camera → compute: raw frame pixels.
const TAG_FRAME: u32 = 300;
/// Compute → camera: compressed product.
const TAG_PROD: u32 = 420;
/// Camera → downlink: forwarded product (the trunk crossing).
const TAG_FWD: u32 = 540;
/// Downlink → camera: frame persisted.
const TAG_ACK: u32 = 660;
/// Camera → compute: every frame is on disk, exit cleanly.
const TAG_DONE: u32 = 780;

const RANK_COMPUTE: u32 = 1;
const RANK_DOWNLINK: u32 = 2;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    /// Camera: exposing/reading out frame `frame`.
    Acquire {
        frame: u32,
    },
    /// Camera: frame streamed to compute, waiting for the product.
    AwaitProduct {
        frame: u32,
    },
    /// Camera: product forwarded, waiting for the downlink ack.
    AwaitAck {
        frame: u32,
    },
    /// Compute: calibrating/compressing frame `frame`.
    Processing {
        frame: u32,
    },
    /// Compute/downlink: waiting for the next message.
    IdleWait,
    /// Downlink: persisting frame `frame`.
    Writing {
        frame: u32,
    },
    Finish,
}

/// One rank of the image-acquisition pipeline.
#[derive(Clone)]
pub struct PipelineApp {
    shell: AppShell,
    params: PipelineParams,
    heap: SciHeap,
    phase: Phase,
    /// Camera: the current frame's product, kept for re-forwarding.
    pending_product: Vec<u8>,
    /// Camera: the outstanding retry timer, cancelled when the awaited
    /// reply arrives (a stale timer firing in a later stage would
    /// re-send needlessly and waste a whole compute pass).
    retry_timer: Option<TimerId>,
    /// Compute: frames waiting behind the one being processed.
    backlog: Vec<(u32, Vec<f64>)>,
    /// Downlink: product bytes waiting to be written.
    write_queue: Vec<(u32, Vec<u8>)>,
    /// Downlink: which frames are persisted.
    delivered: Vec<bool>,
}

impl PipelineApp {
    /// Creates the process for one rank.
    pub fn new(launch: &AppLaunch, params: PipelineParams) -> Self {
        let heap = SciHeap::new(params.frame_px as u64);
        let delivered = vec![false; params.frames as usize];
        PipelineApp {
            shell: AppShell::new(launch.clone(), String::new(), params.pi_period),
            params,
            heap,
            phase: Phase::Init,
            pending_product: Vec::new(),
            retry_timer: None,
            backlog: Vec::new(),
            write_queue: Vec::new(),
            delivered,
        }
    }

    fn status_path(&self) -> String {
        format!(
            "app/{}/s{}/r{}/status",
            self.shell.launch.app, self.shell.launch.slot, self.shell.launch.rank
        )
    }

    fn product_path(&self, frame: u32) -> String {
        format!("output/{}/s{}/pframe{frame}", self.shell.launch.app, self.shell.launch.slot)
    }

    fn done_path(&self) -> String {
        format!("app/{}/s{}/pipedone", self.shell.launch.app, self.shell.launch.slot)
    }

    fn heap_guard(&mut self, ctx: &mut ProcCtx<'_>) -> bool {
        if self.heap.ptr_fault() {
            ctx.trace("imgpipe: dereferenced corrupted status pointer");
            ctx.crash(Signal::Segv);
            return false;
        }
        if self.heap.dims_fault(self.params.frame_px as u64) {
            ctx.trace("imgpipe: corrupted frame dimensions");
            ctx.crash(Signal::Segv);
            return false;
        }
        true
    }

    // ---- camera (rank 0) ----

    fn arm_retry(&mut self, ctx: &mut ProcCtx<'_>) {
        self.disarm_retry(ctx);
        self.retry_timer = Some(ctx.set_timer(self.shell.launch.block_timeout, RETRY_TICK));
    }

    fn disarm_retry(&mut self, ctx: &mut ProcCtx<'_>) {
        if let Some(id) = self.retry_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn camera_begin(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        if frame >= self.params.frames {
            self.shell.mpi.send(ctx, RANK_COMPUTE, TAG_DONE, MpiPayload::Unit);
            self.phase = Phase::Finish;
            self.shell.finish(ctx);
            return;
        }
        self.phase = Phase::Acquire { frame };
        ctx.start_work(self.params.acquire_time, WORK_PHASE);
    }

    fn camera_stream(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        // Acquisition complete: load the detector readout into the
        // working heap (the copy-on-write boundary — heap flips corrupt
        // this rank's copy of the frame, which then streams downstream).
        let f = thermal_frame_shared(
            self.params.frame_px,
            pipeline_frame_seed(&self.shell.launch.app, self.shell.launch.slot),
            frame,
        );
        self.heap.image = f.band11.clone();
        self.shell.progress(ctx);
        self.camera_send_frame(frame, ctx);
    }

    fn camera_send_frame(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        self.shell.mpi.send(
            ctx,
            RANK_COMPUTE,
            TAG_FRAME + frame,
            MpiPayload::F64s(self.heap.image.clone()),
        );
        self.phase = Phase::AwaitProduct { frame };
        self.arm_retry(ctx);
    }

    fn camera_forward(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        self.shell.mpi.send(
            ctx,
            RANK_DOWNLINK,
            TAG_FWD + frame,
            MpiPayload::Bytes(self.pending_product.clone()),
        );
        self.phase = Phase::AwaitAck { frame };
        self.arm_retry(ctx);
    }

    fn camera_product(&mut self, frame: u32, product: Vec<u8>, ctx: &mut ProcCtx<'_>) {
        if self.phase != (Phase::AwaitProduct { frame }) {
            return; // stale product from a re-sent frame
        }
        self.disarm_retry(ctx);
        self.pending_product = product;
        self.shell.progress(ctx);
        self.camera_forward(frame, ctx);
    }

    fn camera_ack(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        if self.phase != (Phase::AwaitAck { frame }) {
            return; // stale ack from a re-forwarded product
        }
        self.disarm_retry(ctx);
        ctx.remote_fs().write(&self.status_path(), format!("{}", frame + 1).into_bytes());
        self.shell.progress(ctx);
        self.camera_begin(frame + 1, ctx);
    }

    // ---- compute (rank 1) ----

    fn compute_accept(&mut self, frame: u32, pixels: Vec<f64>, ctx: &mut ProcCtx<'_>) {
        if let Phase::Processing { frame: busy } = self.phase {
            // Drop duplicates of the in-flight or queued frame (camera
            // re-sends): reprocessing them would stall the stream by a
            // whole compute pass each.
            if busy != frame && !self.backlog.iter().any(|(f, _)| *f == frame) {
                self.backlog.push((frame, pixels));
            }
            return;
        }
        self.heap.image = pixels;
        self.phase = Phase::Processing { frame };
        ctx.start_work(self.params.process_time, WORK_PHASE);
    }

    fn compute_emit(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        // Real calibration arithmetic over the (possibly corrupted)
        // streamed frame, kept in the heap as the feature matrix.
        let calibrated = radiometric_calibrate(&self.heap.image);
        let product = compress(&quantize(&calibrated));
        self.heap.features = calibrated;
        self.shell.mpi.send(ctx, 0, TAG_PROD + frame, MpiPayload::Bytes(product));
        self.shell.progress(ctx);
        self.phase = Phase::IdleWait;
        if !self.backlog.is_empty() {
            let (next, pixels) = self.backlog.remove(0);
            self.compute_accept(next, pixels, ctx);
        }
    }

    // ---- downlink (rank 2) ----

    fn downlink_accept(&mut self, frame: u32, product: Vec<u8>, ctx: &mut ProcCtx<'_>) {
        if let Phase::Writing { .. } = self.phase {
            self.write_queue.push((frame, product));
            return;
        }
        self.heap.features = product.iter().map(|&b| b as f64).collect();
        self.write_queue.insert(0, (frame, product));
        self.phase = Phase::Writing { frame };
        ctx.start_work(self.params.downlink_time, WORK_PHASE);
    }

    fn downlink_commit(&mut self, frame: u32, ctx: &mut ProcCtx<'_>) {
        let (f, product) = self.write_queue.remove(0);
        debug_assert_eq!(f, frame);
        ctx.remote_fs().write(&self.product_path(frame), product);
        if let Some(slot) = self.delivered.get_mut(frame as usize) {
            *slot = true;
        }
        let count = self.delivered.iter().filter(|&&d| d).count();
        ctx.remote_fs().write(&self.status_path(), format!("{count}").into_bytes());
        self.shell.mpi.send(ctx, 0, TAG_ACK + frame, MpiPayload::Unit);
        self.shell.progress(ctx);
        if self.delivered.iter().all(|&d| d) {
            ctx.remote_fs().write(&self.done_path(), b"done".to_vec());
            self.phase = Phase::Finish;
            self.shell.finish(ctx);
            return;
        }
        self.phase = Phase::IdleWait;
        if !self.write_queue.is_empty() {
            let (next, product) = self.write_queue.remove(0);
            self.downlink_accept(next, product, ctx);
        }
    }

    // ---- shared driving ----

    fn begin_run(&mut self, token: &str, ctx: &mut ProcCtx<'_>) {
        match self.shell.launch.rank {
            0 => {
                let resume = token.parse().unwrap_or(0);
                self.camera_begin(resume, ctx);
            }
            RANK_DOWNLINK => {
                // Recover progress by scanning which products survived
                // the restart (the store is the source of truth).
                for frame in 0..self.params.frames {
                    if ctx.remote_fs().read(&self.product_path(frame)).is_some() {
                        self.delivered[frame as usize] = true;
                    }
                }
                if self.delivered.iter().all(|&d| d) {
                    self.phase = Phase::Finish;
                    self.shell.finish(ctx);
                } else {
                    self.phase = Phase::IdleWait;
                }
            }
            _ => {
                // Compute is stateless; if the pipeline already drained
                // while this rank was down, finish immediately.
                if ctx.remote_fs().read(&self.done_path()).is_some() {
                    self.phase = Phase::Finish;
                    self.shell.finish(ctx);
                } else {
                    self.phase = Phase::IdleWait;
                }
            }
        }
    }

    fn drain_mpi(&mut self, ctx: &mut ProcCtx<'_>) {
        let frames = self.params.frames;
        match self.shell.launch.rank {
            0 => {
                for frame in 0..frames {
                    // Stale replies for already-advanced frames are
                    // drained and ignored by the phase checks.
                    while let Some(m) =
                        self.shell.mpi.try_recv(Some(RANK_COMPUTE), TAG_PROD + frame)
                    {
                        if let MpiPayload::Bytes(product) = m.payload {
                            self.camera_product(frame, product, ctx);
                        }
                    }
                    while self.shell.mpi.try_recv(Some(RANK_DOWNLINK), TAG_ACK + frame).is_some() {
                        self.camera_ack(frame, ctx);
                    }
                }
            }
            RANK_COMPUTE => {
                if self.shell.mpi.try_recv(Some(0), TAG_DONE).is_some() {
                    self.backlog.clear();
                    if self.phase != Phase::Finish {
                        self.phase = Phase::Finish;
                        self.shell.finish(ctx);
                    }
                    return;
                }
                for frame in 0..frames {
                    while let Some(m) = self.shell.mpi.try_recv(Some(0), TAG_FRAME + frame) {
                        if let MpiPayload::F64s(pixels) = m.payload {
                            self.compute_accept(frame, pixels, ctx);
                        }
                    }
                }
            }
            _ => {
                for frame in 0..frames {
                    while let Some(m) = self.shell.mpi.try_recv(Some(0), TAG_FWD + frame) {
                        if let MpiPayload::Bytes(product) = m.payload {
                            self.downlink_accept(frame, product, ctx);
                        }
                    }
                }
            }
        }
    }

    fn advance(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.shell.finished() || self.shell.blocked() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        if self.phase == Phase::Init {
            if let ShellPoll::Run(token) = self.shell.poll(ctx) {
                self.begin_run(&token, ctx);
            } else {
                return;
            }
        }
        if self.phase != Phase::Finish {
            self.drain_mpi(ctx);
        }
    }
}

impl Process for PipelineApp {
    fn kind(&self) -> &'static str {
        "pipeline-app"
    }

    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        let token = ctx
            .remote_fs()
            .read(&self.status_path())
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
            .unwrap_or_default();
        let launch = self.shell.launch.clone();
        self.shell = AppShell::new(launch, token, self.params.pi_period);
        self.shell.on_start(ctx);
        self.advance(ctx);
    }

    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        let _ = self.shell.on_message(&msg, ctx);
        self.advance(ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        if tag == RETRY_TICK {
            if self.shell.finished() || self.shell.blocked() || !self.heap_guard(ctx) {
                return;
            }
            // A reply is overdue: the frame, product, or ack was lost to
            // a rank restart mid-stream. Re-send the in-flight stage.
            match self.phase {
                Phase::AwaitProduct { frame } => {
                    ctx.trace("imgpipe: product overdue, re-streaming frame");
                    self.camera_send_frame(frame, ctx);
                }
                Phase::AwaitAck { frame } => {
                    ctx.trace("imgpipe: ack overdue, re-forwarding product");
                    self.camera_forward(frame, ctx);
                }
                _ => {}
            }
            return;
        }
        let _ = self.shell.on_timer(tag, ctx);
        self.advance(ctx);
    }

    fn on_work_done(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        if tag != WORK_PHASE || self.shell.finished() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        match self.phase.clone() {
            Phase::Acquire { frame } => self.camera_stream(frame, ctx),
            Phase::Processing { frame } => self.compute_emit(frame, ctx),
            Phase::Writing { frame } => self.downlink_commit(frame, ctx),
            _ => {}
        }
        self.advance(ctx);
    }

    fn heap(&mut self) -> Option<&mut dyn HeapModel> {
        Some(self)
    }
}

impl HeapModel for PipelineApp {
    fn region_names(&self) -> Vec<String> {
        vec!["image".into(), "features".into(), "ctrl".into()]
    }

    fn flip_bit(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit> {
        self.heap.flip(rng, target)
    }
}

impl std::fmt::Debug for PipelineApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineApp")
            .field("rank", &self.shell.launch.rank)
            .field("phase", &self.phase)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_affine_and_invertible() {
        let raw = vec![250.0, 285.5, 310.25];
        let cal = radiometric_calibrate(&raw);
        for (r, c) in raw.iter().zip(&cal) {
            let back = c / FLAT_GAIN + DARK_OFFSET;
            assert!((back - r).abs() < 1e-9);
        }
    }

    #[test]
    fn nominal_time_is_serial_sum() {
        let p = PipelineParams::default();
        let per_frame = p.acquire_time + p.process_time + p.downlink_time;
        assert_eq!(p.nominal(), per_frame * p.frames as u64);
    }

    #[test]
    fn frame_seed_depends_on_slot_and_app() {
        assert_ne!(pipeline_frame_seed("imgpipe", 0), pipeline_frame_seed("imgpipe", 1));
        assert_ne!(pipeline_frame_seed("imgpipe", 0), pipeline_frame_seed("otis", 0));
    }
}
