//! # ree-apps — the REE scientific applications
//!
//! Faithful synthetic stand-ins for the two MPI applications the paper
//! evaluates (§2): the **Mars Rover texture analysis program** (three
//! directional FFT texture filters + k-means segmentation, status-file
//! checkpoints after each filter) and **OTIS** (split-window atmospheric
//! compensation, emissivity extraction, lossless compression).
//!
//! Both are real computations over deterministic synthetic instrument
//! data: injected bit flips propagate through genuine FFT / clustering /
//! retrieval arithmetic to the science products, which an external
//! verification program checks against tolerance limits (Table 10).
//!
//! # Kernel ↔ paper mapping
//!
//! | module | paper element |
//! |--------|---------------|
//! | [`synth`] | the Mars-surface image and OTIS thermal frames the instruments would deliver (§2); generated deterministically, shared campaign-wide |
//! | [`fft`] | the 2-D FFT behind the texture filters — "approximately 20 seconds … in the FFT routine" (§3.3); planned kernels, see below |
//! | [`filters`] | the three directional texture filters whose per-tile energies feed segmentation (§2, Table 10) |
//! | [`kmeans`] | the k-means clustering that segments the feature vectors (§2) |
//! | [`otis`], [`compress`] | OTIS split-window retrieval, emissivity extraction, lossless compression (§2) |
//! | [`texture`], [`shell`] | the MPI application processes: phases, status files, progress indicators (§3.3) |
//! | [`heap`] | the science heap that heap-model bit flips corrupt (§7) |
//! | [`verify`] | the external verification program deciding correct/incorrect/missing output (§4.2, Table 10) |
//! | [`testbed`] | scenario assembly: the 4- and 6-node testbed configurations (§2, §8) |
//!
//! # Performance
//!
//! These kernels are ~55% of campaign CPU, so they carry the fast-path
//! machinery documented in `docs/PERFORMANCE.md`: precomputed
//! [`fft::FftPlan`]s, precomputed orientation band masks with a pooled
//! [`filters::FilterScratch`], and campaign-shared `Arc`'d inputs
//! ([`synth::mars_surface_shared`]) with copy-on-write at the
//! fault-injection boundary:
//!
//! ```
//! use ree_apps::synth::mars_surface_shared;
//! use ree_apps::filters::{filter_tiles_px, FilterScratch};
//!
//! let image = mars_surface_shared(64, 9); // cached: campaign-shared Arc
//! let mut scratch = FilterScratch::new(8); // FFT plan + tile buffers, reused
//! let energies = filter_tiles_px(image.size, &image.pixels, 0, 0..64, &mut scratch);
//! assert_eq!(energies.len(), 64); // one oriented-energy feature per tile
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod fft;
pub mod filters;
pub mod heap;
pub mod kmeans;
pub mod otis;
pub mod pipeline;
pub mod shell;
pub mod synth;
pub mod testbed;
pub mod texture;
pub mod verify;

use ree_sift::{AppFactory, Blueprint};
use std::sync::Arc;

pub use otis::{OtisApp, OtisParams};
pub use pipeline::{PipelineApp, PipelineParams};
pub use testbed::{run_without_sift, BootSnapshot, Running, Scenario};
pub use texture::{TextureApp, TextureParams};
pub use verify::Verdict;

/// Builds the texture-analysis application factory.
pub fn texture_factory(params: TextureParams) -> AppFactory {
    Arc::new(move |launch| Box::new(TextureApp::new(launch, params.clone())))
}

/// Builds the OTIS application factory.
pub fn otis_factory(params: OtisParams) -> AppFactory {
    Arc::new(move |launch| Box::new(OtisApp::new(launch, params.clone())))
}

/// Builds the image-acquisition pipeline factory.
pub fn pipeline_factory(params: PipelineParams) -> AppFactory {
    Arc::new(move |launch| Box::new(PipelineApp::new(launch, params.clone())))
}

/// Registers the paper applications plus the topology-placed image
/// pipeline in a blueprint under their conventional names (`texture`,
/// `otis`, `imgpipe`).
pub fn register_paper_apps(
    blueprint: &Blueprint,
    texture: TextureParams,
    otis: OtisParams,
    pipeline: PipelineParams,
) {
    blueprint.register_app("texture", texture_factory(texture));
    blueprint.register_app("otis", otis_factory(otis));
    blueprint.register_app("imgpipe", pipeline_factory(pipeline));
}
