//! # ree-apps — the REE scientific applications
//!
//! Faithful synthetic stand-ins for the two MPI applications the paper
//! evaluates (§2): the **Mars Rover texture analysis program** (three
//! directional FFT texture filters + k-means segmentation, status-file
//! checkpoints after each filter) and **OTIS** (split-window atmospheric
//! compensation, emissivity extraction, lossless compression).
//!
//! Both are real computations over deterministic synthetic instrument
//! data: injected bit flips propagate through genuine FFT / clustering /
//! retrieval arithmetic to the science products, which an external
//! verification program checks against tolerance limits (Table 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod fft;
pub mod filters;
pub mod heap;
pub mod kmeans;
pub mod otis;
pub mod shell;
pub mod synth;
pub mod testbed;
pub mod texture;
pub mod verify;

use ree_sift::{AppFactory, Blueprint};
use std::rc::Rc;

pub use otis::{OtisApp, OtisParams};
pub use testbed::{run_without_sift, Running, Scenario};
pub use texture::{TextureApp, TextureParams};
pub use verify::Verdict;

/// Builds the texture-analysis application factory.
pub fn texture_factory(params: TextureParams) -> AppFactory {
    Rc::new(move |launch| Box::new(TextureApp::new(launch, params.clone())))
}

/// Builds the OTIS application factory.
pub fn otis_factory(params: OtisParams) -> AppFactory {
    Rc::new(move |launch| Box::new(OtisApp::new(launch, params.clone())))
}

/// Registers both paper applications in a blueprint under their
/// conventional names (`texture`, `otis`).
pub fn register_paper_apps(blueprint: &Blueprint, texture: TextureParams, otis: OtisParams) {
    blueprint.register_app("texture", texture_factory(texture));
    blueprint.register_app("otis", otis_factory(otis));
}
