//! The Orbiting Thermal Imaging Spectrometer application (§2): "extracts
//! land temperature and surface emissivities from thermal images taken
//! from sensors. The program uses an algorithm to compensate for
//! atmospheric distortions in the thermal input images and an algorithm
//! for data compression."
//!
//! Implemented as a 2-rank MPI program processing a sequence of thermal
//! frames: ranks take alternating frames (rank r gets frame `2k + r`),
//! apply split-window atmospheric compensation, derive emissivities,
//! compress the retrieved temperature product losslessly, and exchange
//! calibration statistics after every frame pair (the tight coupling that
//! propagates stalls between ranks).

use crate::compress::{compress, quantize};
use crate::heap::SciHeap;
use crate::shell::{AppShell, ShellPoll};
use crate::synth::thermal_frame_shared;
use ree_mpi::MpiPayload;
use ree_os::{HeapHit, HeapModel, HeapTarget, Message, ProcCtx, Process, Signal};
use ree_sift::AppLaunch;
use ree_sim::{SimDuration, SimRng};

/// Tunable workload parameters for OTIS.
#[derive(Clone, Debug)]
pub struct OtisParams {
    /// Frame side in pixels.
    pub frame_px: usize,
    /// Total frames to process (split across ranks).
    pub frames: u32,
    /// Virtual CPU time to calibrate/load at startup.
    pub load_time: SimDuration,
    /// Virtual CPU time for atmospheric compensation per frame.
    pub atm_time: SimDuration,
    /// Virtual CPU time for emissivity extraction per frame.
    pub emis_time: SimDuration,
    /// Virtual CPU time for compression per frame.
    pub compress_time: SimDuration,
    /// Progress-indicator declaration period.
    pub pi_period: SimDuration,
}

impl Default for OtisParams {
    fn default() -> Self {
        OtisParams {
            frame_px: 32,
            frames: 14,
            load_time: SimDuration::from_secs(4),
            atm_time: SimDuration::from_secs(12),
            emis_time: SimDuration::from_secs(8),
            compress_time: SimDuration::from_secs(6),
            pi_period: SimDuration::from_secs(20),
        }
    }
}

impl OtisParams {
    /// Expected failure-free actual execution time for a 2-rank run.
    pub fn nominal(&self) -> SimDuration {
        let per_frame = self.atm_time + self.emis_time + self.compress_time;
        self.load_time + per_frame * (self.frames as u64).div_ceil(2)
    }
}

/// Split-window surface-temperature retrieval matching the synthesis
/// model in [`crate::synth::thermal_frame`].
pub fn split_window_retrieve(band11: f64, band12: f64) -> f64 {
    let wv = ((band11 - band12) - 0.2) / 0.9;
    band11 + 1.2 * wv + 0.4
}

/// Synthetic emissivity derived from retrieved temperature.
pub fn emissivity_of(temp_k: f64) -> f64 {
    0.95 + 0.02 * (temp_k / 10.0).sin()
}

const WORK_PHASE: u64 = 1;
const TAG_CALIB: u32 = 200;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Load { working: bool },
    Atm { pair: u32, working: bool },
    Emis { pair: u32, working: bool },
    Compress { pair: u32, working: bool },
    SyncPair { pair: u32 },
    Finish,
}

/// One MPI rank of the OTIS application.
#[derive(Clone)]
pub struct OtisApp {
    shell: AppShell,
    params: OtisParams,
    heap: SciHeap,
    phase: Phase,
    resume_pair: u32,
    retrieved: Vec<f64>,
    calib_seen: Vec<bool>,
}

impl OtisApp {
    /// Creates the process for one rank.
    pub fn new(launch: &AppLaunch, params: OtisParams) -> Self {
        let heap = SciHeap::new(params.frame_px as u64);
        OtisApp {
            shell: AppShell::new(launch.clone(), String::new(), params.pi_period),
            params,
            heap,
            phase: Phase::Init,
            resume_pair: 0,
            retrieved: Vec::new(),
            calib_seen: Vec::new(),
        }
    }

    fn pairs(&self) -> u32 {
        self.params.frames.div_ceil(self.shell.launch.size.max(1))
    }

    fn my_frame(&self, pair: u32) -> u32 {
        pair * self.shell.launch.size + self.shell.launch.rank
    }

    fn status_path(&self) -> String {
        format!(
            "app/{}/s{}/r{}/status",
            self.shell.launch.app, self.shell.launch.slot, self.shell.launch.rank
        )
    }

    fn product_path(&self, frame: u32) -> String {
        format!("output/{}/s{}/frame{frame}", self.shell.launch.app, self.shell.launch.slot)
    }

    fn heap_guard(&mut self, ctx: &mut ProcCtx<'_>) -> bool {
        if self.heap.ptr_fault() {
            ctx.trace("otis: dereferenced corrupted status pointer");
            ctx.crash(Signal::Segv);
            return false;
        }
        if self.heap.dims_fault(self.params.frame_px as u64) {
            ctx.trace("otis: corrupted frame dimensions");
            ctx.crash(Signal::Segv);
            return false;
        }
        true
    }

    fn enter_pair(&mut self, pair: u32, ctx: &mut ProcCtx<'_>) {
        if pair >= self.pairs() {
            self.phase = Phase::Finish;
            self.shell.finish(ctx);
            return;
        }
        let frame = self.my_frame(pair);
        if frame >= self.params.frames {
            // Odd frame count: this rank idles through the last pair but
            // still synchronises.
            self.retrieved.clear();
            self.enter_sync(pair, ctx);
            return;
        }
        // Load the frame's bands into the working heap. The frame comes
        // from the campaign-shared input cache; cloning the bands out is
        // the copy-on-write boundary — injected heap flips land in this
        // rank's private copy, never in the shared frame.
        let f = thermal_frame_shared(
            self.params.frame_px,
            otis_frame_seed(&self.shell.launch.app, self.shell.launch.slot),
            frame,
        );
        self.heap.image = f.band11.clone();
        self.heap.features = f.band12.clone();
        self.phase = Phase::Atm { pair, working: true };
        ctx.start_work(self.params.atm_time, WORK_PHASE);
    }

    fn finish_atm(&mut self, pair: u32, ctx: &mut ProcCtx<'_>) {
        // Real split-window arithmetic over (possibly corrupted) bands.
        self.retrieved = self
            .heap
            .image
            .iter()
            .zip(&self.heap.features)
            .map(|(&b11, &b12)| split_window_retrieve(b11, b12))
            .collect();
        self.shell.progress(ctx);
        self.phase = Phase::Emis { pair, working: true };
        ctx.start_work(self.params.emis_time, WORK_PHASE);
    }

    fn finish_emis(&mut self, pair: u32, ctx: &mut ProcCtx<'_>) {
        let emissivities: Vec<f64> = self.retrieved.iter().map(|&t| emissivity_of(t)).collect();
        // Keep emissivities in the heap (they are part of the product).
        self.heap.features = emissivities;
        self.shell.progress(ctx);
        self.phase = Phase::Compress { pair, working: true };
        ctx.start_work(self.params.compress_time, WORK_PHASE);
    }

    fn finish_compress(&mut self, pair: u32, ctx: &mut ProcCtx<'_>) {
        let frame = self.my_frame(pair);
        let product = compress(&quantize(&self.retrieved));
        ctx.remote_fs().write(&self.product_path(frame), product);
        self.shell.progress(ctx);
        self.enter_sync(pair, ctx);
    }

    fn enter_sync(&mut self, pair: u32, ctx: &mut ProcCtx<'_>) {
        // Exchange calibration statistics with every peer before the
        // next pair (the coupling point).
        let mean = if self.retrieved.is_empty() {
            0.0
        } else {
            self.retrieved.iter().sum::<f64>() / self.retrieved.len() as f64
        };
        for rank in 0..self.shell.launch.size {
            if rank != self.shell.launch.rank {
                self.shell.mpi.send(ctx, rank, TAG_CALIB + pair, MpiPayload::F64s(vec![mean]));
            }
        }
        self.calib_seen = vec![false; self.shell.launch.size as usize];
        self.calib_seen[self.shell.launch.rank as usize] = true;
        self.phase = Phase::SyncPair { pair };
        self.drain_sync(ctx);
    }

    fn drain_sync(&mut self, ctx: &mut ProcCtx<'_>) {
        let Phase::SyncPair { pair } = self.phase else { return };
        while let Some(m) = self.shell.mpi.try_recv(None, TAG_CALIB + pair) {
            if (m.from_rank as usize) < self.calib_seen.len() {
                self.calib_seen[m.from_rank as usize] = true;
            }
        }
        if self.calib_seen.iter().all(|&s| s) {
            ctx.remote_fs().write(&self.status_path(), format!("{},0", pair + 1).into_bytes());
            self.shell.progress(ctx);
            self.enter_pair(pair + 1, ctx);
        }
    }

    fn advance(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.shell.finished() || self.shell.blocked() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        match self.phase.clone() {
            Phase::Init => {
                if let ShellPoll::Run(token) = self.shell.poll(ctx) {
                    let pair = token.split(',').next().and_then(|p| p.parse().ok()).unwrap_or(0);
                    self.resume_pair = pair;
                    self.phase = Phase::Load { working: true };
                    ctx.start_work(self.params.load_time, WORK_PHASE);
                }
            }
            Phase::SyncPair { .. } => self.drain_sync(ctx),
            _ => {}
        }
    }
}

/// Deterministic frame-sequence seed for (app, slot).
pub fn otis_frame_seed(app: &str, slot: u32) -> u64 {
    let mut h: u64 = 0x6f74_6973;
    for b in app.bytes() {
        h = h.rotate_left(7) ^ b as u64;
    }
    h ^ ((slot as u64) << 24)
}

impl Process for OtisApp {
    fn kind(&self) -> &'static str {
        "otis-app"
    }

    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        let token = ctx
            .remote_fs()
            .read(&self.status_path())
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
            .unwrap_or_default();
        let launch = self.shell.launch.clone();
        self.shell = AppShell::new(launch, token, self.params.pi_period);
        self.shell.on_start(ctx);
        self.advance(ctx);
    }

    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        let _ = self.shell.on_message(&msg, ctx);
        self.advance(ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        let _ = self.shell.on_timer(tag, ctx);
        self.advance(ctx);
    }

    fn on_work_done(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        if tag != WORK_PHASE || self.shell.finished() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        match self.phase.clone() {
            Phase::Load { working: true } => {
                self.shell.progress(ctx);
                let pair = self.resume_pair;
                self.enter_pair(pair, ctx);
            }
            Phase::Atm { pair, working: true } => self.finish_atm(pair, ctx),
            Phase::Emis { pair, working: true } => self.finish_emis(pair, ctx),
            Phase::Compress { pair, working: true } => self.finish_compress(pair, ctx),
            _ => {}
        }
        self.advance(ctx);
    }

    fn heap(&mut self) -> Option<&mut dyn HeapModel> {
        Some(self)
    }
}

impl HeapModel for OtisApp {
    fn region_names(&self) -> Vec<String> {
        vec!["image".into(), "features".into(), "ctrl".into()]
    }

    fn flip_bit(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit> {
        self.heap.flip(rng, target)
    }
}

impl std::fmt::Debug for OtisApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OtisApp")
            .field("rank", &self.shell.launch.rank)
            .field("phase", &self.phase)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::thermal_frame;

    #[test]
    fn split_window_recovers_truth_exactly() {
        let frame = thermal_frame(16, 42, 0);
        for i in 0..frame.truth.len() {
            let t = split_window_retrieve(frame.band11[i], frame.band12[i]);
            assert!((t - frame.truth[i]).abs() < 1e-9, "pixel {i}: {t} vs {}", frame.truth[i]);
        }
    }

    #[test]
    fn emissivity_in_physical_range() {
        for t in [250.0, 285.0, 310.0] {
            let e = emissivity_of(t);
            assert!((0.9..=1.0).contains(&e));
        }
    }

    #[test]
    fn nominal_time_is_about_190s() {
        let t = OtisParams::default().nominal().as_secs_f64();
        assert!((150.0..240.0).contains(&t), "nominal {t}");
    }

    #[test]
    fn frame_seed_depends_on_slot() {
        assert_ne!(otis_frame_seed("otis", 0), otis_frame_seed("otis", 1));
    }
}
