//! Output verification — the paper's "external application-provided
//! verification program" that decides whether a run "produced output that
//! falls outside acceptable tolerance limits" (§4.2).
//!
//! Verification recomputes the fault-free reference locally (inputs are
//! deterministic) and compares:
//!
//! * **texture**: segmentation agreement via the Rand index (label
//!   permutations do not matter) with a tolerance for single-tile noise;
//! * **OTIS**: products must decompress losslessly and the retrieved
//!   temperatures must match the reference within quantisation error.

use crate::compress::{decompress, dequantize};
use crate::filters::{assemble_features, filter_tiles, NUM_FILTERS};
use crate::kmeans::kmeans;
use crate::otis::{otis_frame_seed, split_window_retrieve};
use crate::pipeline::{pipeline_frame_seed, radiometric_calibrate};
use crate::synth::{mars_surface_shared, thermal_frame_shared, SharedCache};
use crate::texture::texture_image_seed;
use ree_os::RemoteFs;
use std::sync::Arc;

/// Verdict of the verification program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Output present and within tolerance.
    Correct,
    /// Output present but outside tolerance limits.
    Incorrect,
    /// Output missing (the application did not complete).
    Missing,
}

/// Computes the Rand index between two labelings (pair-counting
/// agreement; invariant to label permutation).
pub fn rand_index(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Reference segmentation for one texture image (the fault-free
/// pipeline run locally).
///
/// The reference is a pure function of `(image seed, image_px, tile_px,
/// clusters)` — the app name/slot/image triple only feeds the seed — and
/// a campaign verifies the *same* reference after every one of its
/// thousands of runs, so the result is memoized process-wide. Before
/// memoization this recomputation was roughly half of all science-kernel
/// CPU in a campaign (see `docs/PERFORMANCE.md`).
pub fn texture_reference(
    app: &str,
    slot: u32,
    image: u32,
    image_px: usize,
    tile_px: usize,
    clusters: usize,
) -> Vec<u8> {
    type Key = (u64, usize, usize, usize);
    static CACHE: SharedCache<Key, Vec<u8>> = SharedCache::new();
    let key: Key = (texture_image_seed(app, slot, image), image_px, tile_px, clusters);
    CACHE
        .get_or_insert_with(key, || {
            Arc::new(compute_texture_reference(key.0, image_px, tile_px, clusters))
        })
        .as_ref()
        .clone()
}

/// The actual fault-free reference pipeline (uncached).
fn compute_texture_reference(
    seed: u64,
    image_px: usize,
    tile_px: usize,
    clusters: usize,
) -> Vec<u8> {
    let img = mars_surface_shared(image_px, seed);
    let per_side = image_px / tile_px;
    let n_tiles = per_side * per_side;
    let per_filter: Vec<Vec<(usize, f64)>> =
        (0..NUM_FILTERS).map(|f| filter_tiles(&img, f, 0..n_tiles, tile_px)).collect();
    let features = assemble_features(&per_filter, n_tiles);
    kmeans(&features, NUM_FILTERS, clusters, 50).labels.iter().map(|&l| l as u8).collect()
}

/// Verifies one texture image's output against the reference.
///
/// Tolerance: Rand index ≥ 0.98 (a single stray tile passes; systematic
/// mis-segmentation fails).
pub fn verify_texture(
    fs: &RemoteFs,
    app: &str,
    slot: u32,
    image: u32,
    image_px: usize,
    tile_px: usize,
    clusters: usize,
) -> Verdict {
    let path = format!("output/{app}/s{slot}/img{image}");
    let Some(labels) = fs.peek(&path) else { return Verdict::Missing };
    let reference = texture_reference(app, slot, image, image_px, tile_px, clusters);
    if labels.len() != reference.len() {
        return Verdict::Incorrect;
    }
    if rand_index(labels, &reference) >= 0.98 {
        Verdict::Correct
    } else {
        Verdict::Incorrect
    }
}

/// Verifies one OTIS frame product: lossless decode plus temperature
/// accuracy within quantisation resolution.
pub fn verify_otis(fs: &RemoteFs, app: &str, slot: u32, frame: u32, frame_px: usize) -> Verdict {
    let path = format!("output/{app}/s{slot}/frame{frame}");
    let Some(product) = fs.peek(&path) else { return Verdict::Missing };
    let Ok(quantised) = decompress(product) else { return Verdict::Incorrect };
    let temps = dequantize(&quantised);
    let reference = thermal_frame_shared(frame_px, otis_frame_seed(app, slot), frame);
    if temps.len() != reference.truth.len() {
        return Verdict::Incorrect;
    }
    let mut worst: f64 = 0.0;
    for (i, t) in temps.iter().enumerate() {
        let expect = split_window_retrieve(reference.band11[i], reference.band12[i]);
        worst = worst.max((t - expect).abs());
    }
    // Quantisation is centi-Kelvin; allow 0.02 K slack.
    if worst <= 0.02 {
        Verdict::Correct
    } else {
        Verdict::Incorrect
    }
}

/// Verifies one pipeline frame product: lossless decode plus calibrated
/// radiance within quantisation resolution of the fault-free pipeline
/// ([`radiometric_calibrate`] over the reference frame).
pub fn verify_pipeline(
    fs: &RemoteFs,
    app: &str,
    slot: u32,
    frame: u32,
    frame_px: usize,
) -> Verdict {
    let path = format!("output/{app}/s{slot}/pframe{frame}");
    let Some(product) = fs.peek(&path) else { return Verdict::Missing };
    let Ok(quantised) = decompress(product) else { return Verdict::Incorrect };
    let values = dequantize(&quantised);
    let reference = thermal_frame_shared(frame_px, pipeline_frame_seed(app, slot), frame);
    let expect = radiometric_calibrate(&reference.band11);
    if values.len() != expect.len() {
        return Verdict::Incorrect;
    }
    let mut worst: f64 = 0.0;
    for (v, e) in values.iter().zip(&expect) {
        worst = worst.max((v - e).abs());
    }
    // Same centi-unit quantisation as OTIS products; 0.02 slack.
    if worst <= 0.02 {
        Verdict::Correct
    } else {
        Verdict::Incorrect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::thermal_frame;

    #[test]
    fn rand_index_of_identical_labelings_is_one() {
        let a = vec![0, 0, 1, 1, 2];
        assert_eq!(rand_index(&a, &a), 1.0);
    }

    #[test]
    fn rand_index_is_permutation_invariant() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn rand_index_penalises_disagreement() {
        let a = vec![0, 0, 0, 0];
        let b = vec![0, 0, 1, 1];
        assert!(rand_index(&a, &b) < 0.8);
    }

    #[test]
    fn texture_reference_is_deterministic() {
        let a = texture_reference("texture", 0, 0, 32, 8, 4);
        let b = texture_reference("texture", 0, 0, 32, 8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn missing_output_is_reported() {
        let fs = RemoteFs::new();
        assert_eq!(verify_texture(&fs, "texture", 0, 0, 32, 8, 4), Verdict::Missing);
        assert_eq!(verify_otis(&fs, "otis", 0, 0, 16), Verdict::Missing);
    }

    #[test]
    fn correct_texture_output_passes() {
        let mut fs = RemoteFs::new();
        let reference = texture_reference("texture", 0, 0, 32, 8, 4);
        fs.write("output/texture/s0/img0", reference);
        assert_eq!(verify_texture(&fs, "texture", 0, 0, 32, 8, 4), Verdict::Correct);
    }

    #[test]
    fn corrupted_texture_output_fails() {
        let mut fs = RemoteFs::new();
        let mut labels = texture_reference("texture", 0, 0, 32, 8, 4);
        // Scramble half the labels.
        for l in labels.iter_mut().take(8) {
            *l = (*l + 1) % 4;
        }
        fs.write("output/texture/s0/img0", labels);
        assert_eq!(verify_texture(&fs, "texture", 0, 0, 32, 8, 4), Verdict::Incorrect);
    }

    #[test]
    fn correct_otis_product_passes() {
        use crate::compress::{compress, quantize};
        let mut fs = RemoteFs::new();
        let frame = thermal_frame(16, otis_frame_seed("otis", 0), 3);
        let temps: Vec<f64> = frame
            .band11
            .iter()
            .zip(&frame.band12)
            .map(|(&a, &b)| split_window_retrieve(a, b))
            .collect();
        fs.write("output/otis/s0/frame3", compress(&quantize(&temps)));
        assert_eq!(verify_otis(&fs, "otis", 0, 3, 16), Verdict::Correct);
    }

    #[test]
    fn correct_pipeline_product_passes() {
        use crate::compress::{compress, quantize};
        let mut fs = RemoteFs::new();
        let frame = thermal_frame(16, pipeline_frame_seed("imgpipe", 0), 2);
        let calibrated = radiometric_calibrate(&frame.band11);
        fs.write("output/imgpipe/s0/pframe2", compress(&quantize(&calibrated)));
        assert_eq!(verify_pipeline(&fs, "imgpipe", 0, 2, 16), Verdict::Correct);
    }

    #[test]
    fn corrupted_pipeline_product_fails() {
        use crate::compress::{compress, quantize};
        let mut fs = RemoteFs::new();
        let frame = thermal_frame(16, pipeline_frame_seed("imgpipe", 0), 0);
        let mut calibrated = radiometric_calibrate(&frame.band11);
        calibrated[7] += 40.0;
        fs.write("output/imgpipe/s0/pframe0", compress(&quantize(&calibrated)));
        assert_eq!(verify_pipeline(&fs, "imgpipe", 0, 0, 16), Verdict::Incorrect);
        assert_eq!(verify_pipeline(&fs, "imgpipe", 0, 1, 16), Verdict::Missing);
    }

    #[test]
    fn garbled_otis_product_fails() {
        let mut fs = RemoteFs::new();
        fs.write("output/otis/s0/frame0", vec![0xFF, 0x12, 0x55]);
        assert_eq!(verify_otis(&fs, "otis", 0, 0, 16), Verdict::Incorrect);
    }
}
