//! Common plumbing shared by the MPI science applications: SIFT attach,
//! progress-indicator creation, the MPICH-style init barrier (rank 0
//! spawns peers, gathers hellos, broadcasts "go"), blocked-call retry,
//! and resume-point agreement after restarts.

use ree_mpi::{MpiEndpoint, MpiPayload};
use ree_os::{Message, NodeId, ProcCtx, SpawnSpec, TraceDetail, TraceEvent};
use ree_sift::{AppLaunch, ClientNote, SiftClient};
use ree_sim::{SimDuration, SimTime};

/// MPI tag for the init hello (carries the sender's resume token).
pub const TAG_HELLO: u32 = 0xFFF1;
/// MPI tag for the go broadcast (carries the agreed resume token).
pub const TAG_GO: u32 = 0xFFF2;

/// Timer tag reserved by the shell for its retry/timeout tick.
pub const SHELL_TICK: u64 = 0xFFF0;

/// Period of the shell's housekeeping tick.
const TICK: SimDuration = SimDuration::from_secs(1);

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum ShellState {
    Attaching,
    CreatingPi,
    InitBarrier,
    Running,
    Exiting,
    Dead,
}

/// What [`AppShell::poll`] tells the application to do.
#[derive(Debug, PartialEq, Eq, Clone)]
pub enum ShellPoll {
    /// Keep waiting (init incomplete or a SIFT call is blocked).
    Wait,
    /// Init complete: start (or resume) computing from the agreed resume
    /// token.
    Run(String),
}

/// Shared application plumbing.
#[derive(Clone)]
pub struct AppShell {
    /// Launch descriptor.
    pub launch: AppLaunch,
    /// SIFT interface client.
    pub client: SiftClient,
    /// MPI endpoint.
    pub mpi: MpiEndpoint,
    state: ShellState,
    my_token: String,
    agreed: Option<String>,
    hellos: Vec<Option<String>>,
    peers_spawned: bool,
    init_deadline: Option<SimTime>,
    init_timeout: SimDuration,
    pi_period: SimDuration,
    announced_run: bool,
}

impl AppShell {
    /// Builds the shell. `my_token` is this rank's persisted resume
    /// token (empty for a fresh run); `pi_period` is the declared
    /// progress-indicator frequency.
    pub fn new(launch: AppLaunch, my_token: String, pi_period: SimDuration) -> Self {
        let client = SiftClient::new(&launch);
        let mpi = MpiEndpoint::new(launch.rank, launch.size);
        let size = launch.size as usize;
        AppShell {
            launch,
            client,
            mpi,
            state: ShellState::Attaching,
            my_token,
            agreed: None,
            hellos: vec![None; size],
            peers_spawned: false,
            init_deadline: None,
            init_timeout: SimDuration::from_secs(15),
            pi_period,
            announced_run: false,
        }
    }

    /// Overrides the rank-0 init timeout (the MPI abort window of
    /// Figure 8).
    pub fn set_init_timeout(&mut self, timeout: SimDuration) {
        self.init_timeout = timeout;
    }

    /// Call from `Process::on_start`.
    pub fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.set_timer(TICK, SHELL_TICK);
        if self.launch.rank == 0 {
            self.init_deadline = Some(ctx.now() + self.init_timeout);
        } else if let Some(r0) = self.launch.rank0_pid {
            self.mpi.set_peer(0, r0);
        }
        if self.client.sift_enabled() {
            self.client.attach(ctx);
        } else {
            self.state = ShellState::InitBarrier;
        }
    }

    /// Call from `Process::on_message` before app-specific handling.
    /// Returns `true` if the shell consumed the message.
    pub fn on_message(&mut self, msg: &Message, ctx: &mut ProcCtx<'_>) -> bool {
        match self.client.handle_message(msg, ctx) {
            ClientNote::Acked(kind) => {
                if self.state == ShellState::Attaching && kind == ree_sift::tags::APP_ATTACH {
                    self.state = ShellState::CreatingPi;
                    self.client.pi_create(ctx, self.pi_period);
                } else if self.state == ShellState::CreatingPi && kind == ree_sift::tags::PI_CREATE
                {
                    self.state = ShellState::InitBarrier;
                } else if self.state == ShellState::Exiting && kind == ree_sift::tags::APP_EXITING {
                    self.state = ShellState::Dead;
                    ctx.exit(0);
                }
                return true;
            }
            ClientNote::Rebound => return true,
            ClientNote::NotMine => {}
        }
        if self.mpi.on_message(msg) {
            if self.state == ShellState::InitBarrier {
                // Init-barrier messages are shell business.
                self.drive_barrier(ctx);
                return true;
            }
            // Buffered application data: let the app inspect its inbox.
            return false;
        }
        false
    }

    /// Call from `Process::on_timer`; returns `true` if the shell
    /// consumed the tick.
    pub fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) -> bool {
        if tag != SHELL_TICK {
            return false;
        }
        ctx.set_timer(TICK, SHELL_TICK);
        if self.client.is_blocked() {
            self.client.retry_pending(ctx);
            if self.client.blocked_for(ctx.now()) > self.launch.block_timeout {
                // The SAN model's app_timeout transition: give up on the
                // unavailable SIFT process.
                ctx.trace_event(
                    TraceEvent::MpiRankGaveUp,
                    TraceDetail::RankGaveUp {
                        rank: self.launch.rank,
                        blocked: self.client.blocked_for(ctx.now()),
                    },
                );
                self.state = ShellState::Dead;
                ctx.exit(1);
                return true;
            }
        }
        if self.state == ShellState::InitBarrier {
            self.drive_barrier(ctx);
            // Rank-0 MPI init timeout (Figure 8): peers failed to check
            // in, abort the whole application.
            if let Some(deadline) = self.init_deadline {
                if self.launch.rank == 0 && ctx.now() > deadline && self.agreed.is_none() {
                    ctx.trace_event(
                        TraceEvent::MpiInitTimeout,
                        "MPI init timeout: rank 0 aborts the application",
                    );
                    self.state = ShellState::Dead;
                    ctx.exit(1);
                }
            }
        }
        true
    }

    fn drive_barrier(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.client.is_blocked() {
            return;
        }
        if self.launch.rank == 0 {
            if !self.peers_spawned {
                self.peers_spawned = true;
                let me = ctx.pid();
                // Table 1 step 5: remotely launch the remaining ranks.
                for rank in 1..self.launch.size {
                    let mut peer_launch = self.launch.for_rank(rank);
                    peer_launch.rank0_pid = Some(me);
                    let node = *peer_launch
                        .nodes
                        .get(rank as usize)
                        .unwrap_or(&peer_launch.nodes.first().copied().unwrap_or(0));
                    let behavior = (self.launch.factory)(&peer_launch);
                    let pid = ctx.spawn(SpawnSpec::new(
                        format!("{}-r{}-a{}", self.launch.app, rank, self.launch.attempt),
                        NodeId(node),
                        behavior,
                    ));
                    self.mpi.set_peer(rank, pid);
                    // Table 1 step 6: report peer pids via the FTM.
                    self.client.report_rank_pid(ctx, rank, pid);
                }
                self.hellos[0] = Some(self.my_token.clone());
            }
            // Collect hellos.
            while let Some(m) = self.mpi.try_recv(None, TAG_HELLO) {
                if let MpiPayload::Text(token) = m.payload {
                    if (m.from_rank as usize) < self.hellos.len() {
                        self.hellos[m.from_rank as usize] = Some(token);
                    }
                }
            }
            if self.agreed.is_none() && self.hellos.iter().all(Option::is_some) {
                // Agree on the minimum resume point so all ranks replay
                // in lockstep.
                let agreed = self
                    .hellos
                    .iter()
                    .flatten()
                    .min_by_key(|t| token_ord(t))
                    .cloned()
                    .unwrap_or_default();
                for rank in 1..self.launch.size {
                    self.mpi.send(ctx, rank, TAG_GO, MpiPayload::Text(agreed.clone()));
                }
                self.agreed = Some(agreed);
                self.state = ShellState::Running;
            }
        } else {
            // Say hello once attached (covers SIFT-disabled mode too).
            if self.hellos[self.launch.rank as usize].is_none() && self.client.is_attached() {
                self.hellos[self.launch.rank as usize] = Some(self.my_token.clone());
                self.mpi.send(ctx, 0, TAG_HELLO, MpiPayload::Text(self.my_token.clone()));
            }
            if let Some(m) = self.mpi.try_recv(Some(0), TAG_GO) {
                if let MpiPayload::Text(token) = m.payload {
                    self.agreed = Some(token);
                    self.state = ShellState::Running;
                }
            }
        }
    }

    /// Polls the shell's readiness.
    pub fn poll(&mut self, ctx: &mut ProcCtx<'_>) -> ShellPoll {
        if self.state == ShellState::InitBarrier {
            self.drive_barrier(ctx);
        }
        match (&self.state, &self.agreed) {
            (ShellState::Running, Some(token)) => {
                if !self.announced_run {
                    self.announced_run = true;
                    ctx.trace_event(
                        TraceEvent::AppStarted,
                        TraceDetail::AppRankRunning {
                            app: self.launch.app.as_str().into(),
                            rank: self.launch.rank,
                            token: token.as_str().into(),
                        },
                    );
                }
                ShellPoll::Run(token.clone())
            }
            _ => ShellPoll::Wait,
        }
    }

    /// True while a SIFT call is outstanding (the app must not advance).
    pub fn blocked(&self) -> bool {
        self.client.is_blocked()
    }

    /// Sends a progress indicator if not blocked.
    pub fn progress(&mut self, ctx: &mut ProcCtx<'_>) {
        if !self.client.is_blocked() {
            self.client.progress(ctx);
        }
    }

    /// Begins the clean-exit handshake (Table 1 step 11).
    pub fn finish(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.client.sift_enabled() {
            self.state = ShellState::Exiting;
            self.client.notify_exit(ctx);
        } else {
            self.state = ShellState::Dead;
            ctx.exit(0);
        }
    }

    /// True once the shell has requested process exit.
    pub fn finished(&self) -> bool {
        self.state == ShellState::Dead
    }
}

/// Orders resume tokens `"image,filter"` numerically.
fn token_ord(token: &str) -> (u64, u64) {
    let mut parts = token.split(',');
    let a = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    let b = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ordering_is_numeric() {
        assert!(token_ord("2,1") > token_ord("2,0"));
        assert!(token_ord("10,0") > token_ord("9,5"));
        assert_eq!(token_ord(""), (0, 0));
        assert_eq!(token_ord("3"), (3, 0));
    }
}
