//! Scenario assembly: cluster + blueprint + SCC + applications, plus
//! measurement extraction. Every experiment (and most integration tests)
//! starts from a [`Scenario`].

use crate::{OtisParams, PipelineParams, TextureParams};
use ree_os::NodeId;
use ree_os::{Cluster, ClusterConfig, LinkParams, Pid, Port, SpawnSpec, Topology};
use ree_sift::{Blueprint, JobSpec, JobTimes, Scc, SiftConfig};
use ree_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// A declarative experiment setup.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of cluster nodes (4 for single-app, 6 for two-app runs).
    pub nodes: usize,
    /// SIFT environment configuration.
    pub sift: SiftConfig,
    /// Texture-application workload parameters.
    pub texture: TextureParams,
    /// OTIS workload parameters.
    pub otis: OtisParams,
    /// Image-acquisition pipeline workload parameters.
    pub pipeline: PipelineParams,
    /// Jobs the SCC submits.
    pub jobs: Vec<JobSpec>,
    /// Master seed.
    pub seed: u64,
    /// Whether the OS trace records events (slower, needed for
    /// classification).
    pub trace: bool,
    /// Explicit interconnect topology. `None` builds the degenerate
    /// single-switch topology from the cluster's flat [`ree_os::NetworkConfig`]
    /// — byte-for-byte identical to the historical flat model.
    pub topology: Option<Topology>,
}

impl Scenario {
    /// The paper's standard single-application setup: the texture
    /// program on two nodes of the 4-node testbed, submitted at t=5 s.
    pub fn single_texture(seed: u64) -> Scenario {
        Scenario {
            nodes: 4,
            sift: SiftConfig::paper(),
            texture: TextureParams::default(),
            otis: OtisParams::default(),
            pipeline: PipelineParams::default(),
            jobs: vec![JobSpec {
                app: "texture".into(),
                ranks: 2,
                nodes: vec![2, 3],
                submit_at: SimDuration::from_secs(5),
            }],
            seed,
            trace: true,
            topology: None,
        }
    }

    /// The §8 two-application setup on the 6-node testbed: Mars Rover
    /// texture (two images) + OTIS, each rank on a dedicated node.
    pub fn two_apps(seed: u64) -> Scenario {
        let texture = TextureParams { images: 2, ..Default::default() };
        Scenario {
            nodes: 6,
            sift: SiftConfig::paper(),
            texture,
            otis: OtisParams::default(),
            pipeline: PipelineParams::default(),
            jobs: vec![
                JobSpec {
                    app: "texture".into(),
                    ranks: 2,
                    nodes: vec![2, 3],
                    submit_at: SimDuration::from_secs(5),
                },
                JobSpec {
                    app: "otis".into(),
                    ranks: 2,
                    nodes: vec![4, 5],
                    submit_at: SimDuration::from_secs(6),
                },
            ],
            seed,
            trace: true,
            topology: None,
        }
    }

    /// The image-acquisition pipeline on an explicit two-switch
    /// topology: camera and compute share the acquisition switch with
    /// the SIFT control nodes; the downlink rank sits alone behind a
    /// constrained trunk (a tenth of the uplink bandwidth) — the link a
    /// partition fault severs in the network experiments.
    pub fn image_pipeline(seed: u64) -> Scenario {
        let mut b = Topology::builder(5);
        let acquisition = b.add_switch();
        let downlink = b.add_switch();
        let uplink = LinkParams::wire(12_500_000, SimDuration::from_micros(200));
        for node in 0..4u16 {
            b.connect(Port::Node(NodeId(node)), Port::Switch(acquisition), uplink, uplink);
        }
        b.connect(Port::Node(NodeId(4)), Port::Switch(downlink), uplink, uplink);
        let trunk = LinkParams::wire(1_250_000, SimDuration::from_micros(500));
        b.connect_symmetric(Port::Switch(acquisition), Port::Switch(downlink), trunk);
        Scenario {
            nodes: 5,
            sift: SiftConfig::paper(),
            texture: TextureParams::default(),
            otis: OtisParams::default(),
            pipeline: PipelineParams::default(),
            jobs: vec![JobSpec {
                app: "imgpipe".into(),
                ranks: 3,
                nodes: vec![1, 2, 4],
                submit_at: SimDuration::from_secs(5),
            }],
            seed,
            trace: true,
            topology: Some(b.build()),
        }
    }

    /// Builds and boots the scenario: SIFT environment installing, jobs
    /// scheduled.
    pub fn start(&self) -> Running {
        let mut config = if self.nodes <= 4 {
            ClusterConfig::ree_testbed(self.seed)
        } else {
            ClusterConfig::ree_testbed_6node(self.seed)
        };
        config.nodes = self.nodes;
        config.trace_enabled = self.trace;
        config.topology = self.topology.clone();
        let mut cluster = Cluster::new(config);
        let blueprint = Blueprint::new(self.sift.clone());
        crate::register_paper_apps(
            &blueprint,
            self.texture.clone(),
            self.otis.clone(),
            self.pipeline.clone(),
        );
        let scc = Scc::new(Arc::clone(&blueprint), self.nodes as u16, self.jobs.clone());
        let scc_pid = cluster.spawn(SpawnSpec::new("scc", NodeId(0), Box::new(scc)));
        Running { cluster, scc_pid, jobs: self.jobs.len() }
    }

    /// Pre-generates every campaign-shared synthetic input this
    /// scenario's jobs will read ([`crate::synth::mars_surface_shared`],
    /// [`crate::synth::thermal_frame_shared`]), so a campaign's worker
    /// threads find the cache warm instead of racing to synthesise the
    /// same image. Runs hit the cache either way — warming is purely a
    /// throughput optimisation, never a correctness requirement.
    ///
    /// ```
    /// let scenario = ree_apps::Scenario::single_texture(7);
    /// scenario.warm_inputs(); // idempotent; the `Campaign` executor calls it
    /// ```
    pub fn warm_inputs(&self) {
        for (slot, job) in self.jobs.iter().enumerate() {
            let slot = slot as u32;
            match job.app.as_str() {
                "texture" => {
                    for image in 0..self.texture.images {
                        let _ = crate::synth::mars_surface_shared(
                            self.texture.image_px,
                            crate::texture::texture_image_seed(&job.app, slot, image),
                        );
                    }
                }
                "otis" => {
                    let seed = crate::otis::otis_frame_seed(&job.app, slot);
                    for frame in 0..self.otis.frames {
                        let _ = crate::synth::thermal_frame_shared(self.otis.frame_px, seed, frame);
                    }
                }
                "imgpipe" => {
                    let seed = crate::pipeline::pipeline_frame_seed(&job.app, slot);
                    for frame in 0..self.pipeline.frames {
                        let _ =
                            crate::synth::thermal_frame_shared(self.pipeline.frame_px, seed, frame);
                    }
                }
                _ => {}
            }
        }
    }

    /// Runs the scenario without any injection until all jobs complete
    /// or `horizon` passes; returns the run.
    pub fn run_fault_free(&self, horizon: SimTime) -> Running {
        let mut running = self.start();
        running.run_until_done(horizon);
        running
    }

    /// Boots the scenario once and freezes it at `until` as a reusable
    /// [`BootSnapshot`]. Campaigns boot the identical SIFT cluster for
    /// every run; snapshotting the booted state and handing each run a
    /// deep clone skips re-executing the whole installation protocol
    /// (~5 s of simulated setup) per run.
    ///
    /// Boot runs under this scenario's `seed`, which a campaign holds
    /// fixed; per-run randomness enters only when a fork re-seeds the
    /// cluster streams ([`BootSnapshot::fork`]). Cold boots that re-seed
    /// at the same instant reproduce a fork byte-for-byte.
    pub fn boot_snapshot(&self, until: SimTime) -> BootSnapshot {
        let mut running = self.start();
        running.run_until_done(until);
        // Freeze the boot-time trace records into the shared prefix so
        // each fork's clone is a refcount bump, not a deep copy. Readers
        // see the identical sequence, so warm and cold runs still render
        // byte-for-byte the same.
        running.cluster.trace_mut().freeze();
        BootSnapshot { running, booted_to: until }
    }
}

/// A booted cluster frozen at a fixed instant, cheaply forkable into
/// independent per-run copies.
///
/// The snapshot is `Send + Sync`: one boot on the campaign thread serves
/// every worker, each of which clones (`fork`) its own `Running` per
/// run. Everything mutable is deep-copied by the fork; only immutable
/// shared structure (app factories, interned names, FFT plans, synthetic
/// input caches) stays `Arc`-shared across forks.
pub struct BootSnapshot {
    running: Running,
    booted_to: SimTime,
}

impl BootSnapshot {
    /// The instant the boot was frozen at.
    pub fn booted_to(&self) -> SimTime {
        self.booted_to
    }

    /// True if every job already completed during boot (degenerate
    /// scenarios only; campaigns then have nothing left to inject into).
    pub fn all_done(&self) -> bool {
        self.running.all_done()
    }

    /// Deep-clones the booted cluster and re-seeds its random streams
    /// from `seed` — the per-run warm-boot path.
    pub fn fork(&self, seed: u64) -> Running {
        let mut running = self.running.clone();
        running.cluster.reseed(seed);
        running
    }

    /// Consumes the snapshot into a run without the clone — the cold
    /// path (boot, re-seed, run) used when a snapshot serves one run.
    pub fn into_running(self, seed: u64) -> Running {
        let mut running = self.running;
        running.cluster.reseed(seed);
        running
    }
}

impl std::fmt::Debug for BootSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootSnapshot")
            .field("booted_to", &self.booted_to)
            .field("running", &self.running)
            .finish()
    }
}

/// Memoised `scc/alldone` probe for per-event completion predicates.
///
/// The returned closure re-reads the remote file system only when its
/// content [`version`](ree_os::RemoteFs::version) has moved — a u64
/// compare per event instead of a path lookup. The probed value can
/// only change when the table mutates, so the answer sequence is
/// identical to probing every event.
fn all_done_memo() -> impl FnMut(&Cluster) -> bool {
    let mut seen = u64::MAX;
    let mut done = false;
    move |c: &Cluster| {
        let fs = c.remote_fs_ref();
        if fs.version() != seen {
            seen = fs.version();
            done = fs.peek("scc/alldone").is_some();
        }
        done
    }
}

/// A live (or finished) scenario execution.
#[derive(Clone)]
pub struct Running {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// The SCC driver's pid.
    pub scc_pid: Pid,
    jobs: usize,
}

impl Running {
    /// Runs until every job has a completion report (true) or the
    /// horizon passes (false).
    pub fn run_until_done(&mut self, horizon: SimTime) -> bool {
        let jobs = self.jobs;
        let mut done = all_done_memo();
        self.cluster.run_until_pred(horizon, |c| done(c) && jobs > 0)
    }

    /// Runs for a fixed horizon regardless of completion.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.cluster.run_until(horizon);
    }

    /// Like [`Running::run_until_done`], but also stops (without
    /// counting as done) as soon as `pred` holds — the hook network
    /// fault drivers use to react to trace events (e.g. arming a
    /// partition off the first failure detection) mid-run.
    pub fn run_until_done_or(
        &mut self,
        horizon: SimTime,
        mut pred: impl FnMut(&Cluster) -> bool,
    ) -> bool {
        let jobs = self.jobs;
        let mut done = all_done_memo();
        self.cluster.run_until_pred(horizon, |c| (done(c) && jobs > 0) || pred(c));
        self.all_done()
    }

    /// Timing record of one job slot.
    pub fn job_times(&self, slot: u64) -> Option<JobTimes> {
        self.cluster.remote_fs_ref().peek(&JobTimes::path(slot)).and_then(JobTimes::decode)
    }

    /// True if every job completed.
    pub fn all_done(&self) -> bool {
        self.cluster.remote_fs_ref().peek("scc/alldone").is_some()
    }

    /// Recovery intervals measured from the trace: pairs each
    /// failure-detection event with the next recovery-completion event —
    /// the interval between failure detection and target restart (§4.2's
    /// recovery-time definition).
    pub fn recovery_times(&self) -> Vec<SimDuration> {
        let trace = self.cluster.trace();
        let completions: Vec<(usize, SimTime)> = trace
            .records()
            .enumerate()
            .filter(|(_, r)| r.event == Some(ree_os::TraceEvent::RecoveryCompleted))
            .map(|(i, r)| (i, r.time))
            .collect();
        let mut out = Vec::new();
        let mut c = 0;
        for (i, r) in trace.records().enumerate() {
            if !r.event.map(|e| e.is_failure_detection()).unwrap_or(false) {
                continue;
            }
            while c < completions.len() && completions[c].0 <= i {
                c += 1;
            }
            if let Some(&(_, done)) = completions.get(c) {
                out.push(done.since(r.time));
            }
        }
        out
    }

    /// Count of application restarts observed across all jobs.
    pub fn total_restarts(&self) -> u64 {
        (0..self.jobs as u64).filter_map(|s| self.job_times(s)).map(|t| t.restarts).sum()
    }
}

impl std::fmt::Debug for Running {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Running")
            .field("now", &self.cluster.now())
            .field("jobs", &self.jobs)
            .field("done", &self.all_done())
            .finish()
    }
}

/// Runs an application **without** the SIFT environment (the Table 3
/// "Baseline No SIFT" configuration): ranks spawned directly, no ARMORs.
pub fn run_without_sift(scenario: &Scenario, horizon: SimTime) -> (Cluster, Option<SimDuration>) {
    let mut config = ClusterConfig::ree_testbed(scenario.seed);
    config.nodes = scenario.nodes;
    config.trace_enabled = scenario.trace;
    config.topology = scenario.topology.clone();
    let mut cluster = Cluster::new(config);
    let blueprint = Blueprint::new(scenario.sift.clone());
    crate::register_paper_apps(
        &blueprint,
        scenario.texture.clone(),
        scenario.otis.clone(),
        scenario.pipeline.clone(),
    );
    let job = scenario.jobs.first().expect("scenario has a job");
    let factory = blueprint.app_factory(&job.app).expect("registered app");
    let launch = ree_sift::AppLaunch {
        app: job.app.clone(),
        slot: 0,
        rank: 0,
        size: job.ranks,
        nodes: job.nodes.clone(),
        exec_pids: vec![],
        attempt: 0,
        sift_enabled: false,
        rank0_pid: None,
        block_timeout: SimDuration::from_secs(30),
        factory: factory.clone(),
    };
    let behavior = factory(&launch);
    let start = SimTime::ZERO;
    let rank0 = cluster.spawn(SpawnSpec::new(
        format!("{}-r0-nosift", job.app),
        NodeId(job.nodes[0]),
        behavior,
    ));
    // Run until rank 0 exits (the app writes its products before that).
    cluster.run_until_pred(horizon, |c| !c.is_alive(rank0));
    let duration = cluster.exit_status(rank0).map(|(t, _)| t.since(start));
    (cluster, duration)
}
