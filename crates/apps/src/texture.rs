//! The Mars Rover texture analysis program (§2, \[7\]).
//!
//! "Cameras on the Mars Rover take images of the Martian surface and
//! store the images on stable storage. The program applies a series of
//! filters to segment the image according to texture features. Three
//! filters are used to extract vectors that describe image features along
//! each of its three axes. A statistical clustering algorithm is applied
//! to the feature vectors in order to segment the image. … The
//! application takes rudimentary checkpoints by updating a status file
//! after each filter completes. If the application restarts, it can skip
//! filters that have already completed, but it must redo any filtering
//! that was interrupted."
//!
//! Implemented as an MPI program: tiles are split across ranks; each
//! filter phase computes directional FFT energies for the local tiles
//! (~20 s of virtual CPU per filter, matching §3.3), exchanges them
//! all-to-all, and updates the status file. Rank 0 then runs k-means and
//! writes the segmented output.

use crate::filters::{assemble_features, filter_tiles_px, FilterScratch, NUM_FILTERS};
use crate::heap::SciHeap;
use crate::kmeans::kmeans;
use crate::shell::{AppShell, ShellPoll};
use crate::synth::{mars_surface_shared, Image};
use ree_mpi::MpiPayload;
use ree_os::{HeapHit, HeapModel, HeapTarget, Message, ProcCtx, Process, Signal};
use ree_sift::AppLaunch;
use ree_sim::{SimDuration, SimRng};
use std::sync::Arc;

/// Tunable workload parameters for the texture program.
#[derive(Clone, Debug)]
pub struct TextureParams {
    /// Image side in pixels (power of two).
    pub image_px: usize,
    /// Tile side in pixels (power of two).
    pub tile_px: usize,
    /// Number of clusters for segmentation.
    pub clusters: usize,
    /// Images analysed per run ("one image per run" in §2; two in the
    /// §8 two-application configuration).
    pub images: u32,
    /// Virtual CPU time to load an image.
    pub load_time: SimDuration,
    /// Virtual CPU time per filter per rank (the ~20 s FFT call of §3.3,
    /// divided across ranks).
    pub filter_time: SimDuration,
    /// Virtual CPU time for clustering (rank 0).
    pub cluster_time: SimDuration,
    /// Virtual CPU time to write output.
    pub write_time: SimDuration,
    /// Progress-indicator declaration period.
    pub pi_period: SimDuration,
}

impl Default for TextureParams {
    fn default() -> Self {
        TextureParams {
            image_px: 64,
            tile_px: 8,
            clusters: 4,
            images: 1,
            load_time: SimDuration::from_secs(3),
            filter_time: SimDuration::from_secs(19),
            cluster_time: SimDuration::from_secs(12),
            write_time: SimDuration::from_secs(2),
            pi_period: SimDuration::from_secs(20),
        }
    }
}

impl TextureParams {
    /// Expected failure-free *actual* execution time per image for a
    /// 2-rank run (used by experiment calibration and tests).
    pub fn nominal_per_image(&self) -> SimDuration {
        self.load_time + self.filter_time * NUM_FILTERS as u64 + self.cluster_time + self.write_time
    }
}

const WORK_PHASE: u64 = 1;
const TAG_FEAT_BASE: u32 = 100;
const TAG_DONE: u32 = 99;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Load { working: bool },
    Filter { f: u32, working: bool },
    Exchange { f: u32 },
    Cluster { working: bool },
    AwaitDone,
    Write { working: bool },
    Finish,
}

/// One MPI rank of the texture-analysis application.
#[derive(Clone)]
pub struct TextureApp {
    shell: AppShell,
    params: TextureParams,
    heap: SciHeap,
    image_idx: u32,
    phase: Phase,
    resume_filter: u32,
    /// Per-filter tile energies gathered so far (all ranks' shares).
    per_filter: Vec<Vec<(usize, f64)>>,
    /// Which ranks' shares we already merged for the in-flight exchange.
    got_share: Vec<bool>,
    /// Reusable tile/column/plan scratch for the filter kernels.
    scratch: Option<FilterScratch>,
}

impl TextureApp {
    /// Creates the process for one rank.
    pub fn new(launch: &AppLaunch, params: TextureParams) -> Self {
        let heap = SciHeap::new(params.image_px as u64);
        TextureApp {
            shell: AppShell::new(launch.clone(), String::new(), params.pi_period),
            params,
            heap,
            image_idx: 0,
            phase: Phase::Init,
            resume_filter: 0,
            per_filter: vec![Vec::new(); NUM_FILTERS],
            got_share: Vec::new(),
            scratch: None,
        }
    }

    fn n_tiles(&self) -> usize {
        let per_side = self.params.image_px / self.params.tile_px;
        per_side * per_side
    }

    fn my_tiles(&self) -> std::ops::Range<usize> {
        let n = self.n_tiles();
        let ranks = self.shell.launch.size as usize;
        let per = n.div_ceil(ranks);
        let lo = per * self.shell.launch.rank as usize;
        lo.min(n)..(lo + per).min(n)
    }

    fn status_path(&self) -> String {
        format!(
            "app/{}/s{}/r{}/status",
            self.shell.launch.app, self.shell.launch.slot, self.shell.launch.rank
        )
    }

    fn feat_path(&self, image: u32, filter: u32) -> String {
        format!("app/{}/s{}/feat-{image}-{filter}", self.shell.launch.app, self.shell.launch.slot)
    }

    fn output_path(&self, image: u32) -> String {
        format!("output/{}/s{}/img{image}", self.shell.launch.app, self.shell.launch.slot)
    }

    /// Reads the persisted resume token (`"image,filters_done"`).
    fn read_token(&self, ctx: &mut ProcCtx<'_>) -> String {
        ctx.remote_fs()
            .read(&self.status_path())
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
            .unwrap_or_default()
    }

    fn write_status(&mut self, ctx: &mut ProcCtx<'_>, image: u32, filters_done: u32) {
        ctx.remote_fs().write(&self.status_path(), format!("{image},{filters_done}").into_bytes());
    }

    /// Integrity checks on the science heap; a corrupted pointer or
    /// dimension field crashes the process (Table 10 crash mechanism).
    fn heap_guard(&mut self, ctx: &mut ProcCtx<'_>) -> bool {
        if self.heap.ptr_fault() {
            ctx.trace("texture: dereferenced corrupted status pointer");
            ctx.crash(Signal::Segv);
            return false;
        }
        if self.heap.dims_fault(self.params.image_px as u64) {
            ctx.trace("texture: corrupted image dimensions");
            ctx.crash(Signal::Segv);
            return false;
        }
        true
    }

    fn enter_load(&mut self, ctx: &mut ProcCtx<'_>) {
        self.phase = Phase::Load { working: true };
        ctx.start_work(self.params.load_time, WORK_PHASE);
    }

    fn finish_load(&mut self, ctx: &mut ProcCtx<'_>) {
        // The camera stored the image on stable storage; generate it
        // deterministically on first access. Generation goes through the
        // campaign-shared cache, so the thousands of runs of a campaign
        // synthesise each input exactly once per worker process.
        let path = format!(
            "images/{}-s{}-{}.img",
            self.shell.launch.app, self.shell.launch.slot, self.image_idx
        );
        let image = match ctx.remote_fs().read(&path).and_then(Image::from_bytes) {
            Some(img) if img.size == self.params.image_px => Arc::new(img),
            _ => {
                let img = mars_surface_shared(
                    self.params.image_px,
                    texture_image_seed(
                        &self.shell.launch.app,
                        self.shell.launch.slot,
                        self.image_idx,
                    ),
                );
                ctx.remote_fs().write(&path, img.to_bytes());
                img
            }
        };
        // Copy-on-write boundary: the heap owns the copy fault injection
        // may flip; the shared image stays pristine.
        self.heap.image = image.pixels.clone();
        self.heap.features = vec![0.0; self.n_tiles() * NUM_FILTERS];
        self.per_filter = vec![Vec::new(); NUM_FILTERS];
        // Reload features of filters completed before a restart.
        for f in 0..self.resume_filter {
            if let Some(bytes) = ctx.remote_fs().read(&self.feat_path(self.image_idx, f)) {
                self.per_filter[f as usize] = decode_energies(bytes);
            }
        }
        self.shell.progress(ctx);
        if self.resume_filter as usize >= NUM_FILTERS {
            self.enter_cluster(ctx);
        } else {
            self.enter_filter(self.resume_filter, ctx);
        }
    }

    fn enter_filter(&mut self, f: u32, ctx: &mut ProcCtx<'_>) {
        self.phase = Phase::Filter { f, working: true };
        ctx.start_work(self.params.filter_time, WORK_PHASE);
    }

    fn finish_filter(&mut self, f: u32, ctx: &mut ProcCtx<'_>) {
        // The real FFT computation for this rank's tiles, straight over
        // the (possibly bit-flipped) science heap — injected flips
        // propagate through this arithmetic into the features and the
        // final segmentation. The scratch pool persists across filters.
        let mut scratch =
            self.scratch.take().unwrap_or_else(|| FilterScratch::new(self.params.tile_px));
        let mine = filter_tiles_px(
            self.params.image_px,
            &self.heap.image,
            f as usize,
            self.my_tiles(),
            &mut scratch,
        );
        self.scratch = Some(scratch);
        // Share with every peer, collect everyone's share.
        let flat: Vec<f64> = mine.iter().flat_map(|(t, e)| vec![*t as f64, *e]).collect();
        for rank in 0..self.shell.launch.size {
            if rank != self.shell.launch.rank {
                self.shell.mpi.send(ctx, rank, TAG_FEAT_BASE + f, MpiPayload::F64s(flat.clone()));
            }
        }
        self.per_filter[f as usize] = mine;
        self.got_share = vec![false; self.shell.launch.size as usize];
        self.got_share[self.shell.launch.rank as usize] = true;
        self.phase = Phase::Exchange { f };
        self.shell.progress(ctx);
        self.drain_exchange(ctx);
    }

    fn drain_exchange(&mut self, ctx: &mut ProcCtx<'_>) {
        let Phase::Exchange { f } = self.phase else { return };
        while let Some(m) = self.shell.mpi.try_recv(None, TAG_FEAT_BASE + f) {
            let from = m.from_rank as usize;
            if let Some(values) = m.payload.into_f64s() {
                for pair in values.chunks_exact(2) {
                    self.per_filter[f as usize].push((pair[0] as usize, pair[1]));
                }
                if from < self.got_share.len() {
                    self.got_share[from] = true;
                }
            }
        }
        if self.got_share.iter().all(|&g| g) {
            self.per_filter[f as usize].sort_unstable_by_key(|(t, _)| *t);
            // Persist: status + this filter's full energies ("updating a
            // status file after each filter completes").
            if self.shell.launch.rank == 0 {
                let bytes = encode_energies(&self.per_filter[f as usize]);
                let path = self.feat_path(self.image_idx, f);
                ctx.remote_fs().write(&path, bytes);
            }
            self.write_status(ctx, self.image_idx, f + 1);
            self.shell.progress(ctx);
            if (f as usize) + 1 < NUM_FILTERS {
                self.enter_filter(f + 1, ctx);
            } else {
                self.enter_cluster(ctx);
            }
        }
    }

    fn enter_cluster(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.shell.launch.rank == 0 {
            self.phase = Phase::Cluster { working: true };
            ctx.start_work(self.params.cluster_time, WORK_PHASE);
        } else {
            self.phase = Phase::AwaitDone;
            self.drain_done(ctx);
        }
    }

    fn finish_cluster(&mut self, ctx: &mut ProcCtx<'_>) {
        let n = self.n_tiles();
        self.heap.features = assemble_features(&self.per_filter, n);
        let clustering = kmeans(&self.heap.features, NUM_FILTERS, self.params.clusters, 50);
        let labels: Vec<u8> = clustering.labels.iter().map(|&l| l as u8).collect();
        ctx.remote_fs().write(&self.output_path(self.image_idx), labels);
        self.shell.progress(ctx);
        self.phase = Phase::Write { working: true };
        ctx.start_work(self.params.write_time, WORK_PHASE);
    }

    fn finish_write(&mut self, ctx: &mut ProcCtx<'_>) {
        for rank in 1..self.shell.launch.size {
            self.shell.mpi.send(ctx, rank, TAG_DONE, MpiPayload::Unit);
        }
        self.next_image(ctx);
    }

    fn drain_done(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.phase == Phase::AwaitDone && self.shell.mpi.try_recv(Some(0), TAG_DONE).is_some() {
            self.next_image(ctx);
        }
    }

    fn next_image(&mut self, ctx: &mut ProcCtx<'_>) {
        self.shell.progress(ctx);
        self.image_idx += 1;
        self.resume_filter = 0;
        if self.image_idx >= self.params.images {
            self.phase = Phase::Finish;
            self.shell.finish(ctx);
        } else {
            self.write_status(ctx, self.image_idx, 0);
            self.enter_load(ctx);
        }
    }

    fn advance(&mut self, ctx: &mut ProcCtx<'_>) {
        if self.shell.finished() || self.shell.blocked() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        match self.phase.clone() {
            Phase::Init => {
                if let ShellPoll::Run(token) = self.shell.poll(ctx) {
                    // Parse the agreed resume token.
                    let (img, filt) = parse_token(&token);
                    self.image_idx = img.min(self.params.images.saturating_sub(1));
                    self.resume_filter = filt.min(NUM_FILTERS as u32);
                    self.enter_load(ctx);
                }
            }
            Phase::Exchange { .. } => self.drain_exchange(ctx),
            Phase::AwaitDone => self.drain_done(ctx),
            _ => {}
        }
    }
}

fn parse_token(token: &str) -> (u32, u32) {
    let mut parts = token.split(',');
    let a = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    let b = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    (a, b)
}

fn encode_energies(tiles: &[(usize, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tiles.len() * 16);
    for (t, e) in tiles {
        out.extend_from_slice(&(*t as u64).to_le_bytes());
        out.extend_from_slice(&e.to_le_bytes());
    }
    out
}

fn decode_energies(bytes: &[u8]) -> Vec<(usize, f64)> {
    bytes
        .chunks_exact(16)
        .map(|c| {
            let t = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
            let e = f64::from_le_bytes(c[8..].try_into().expect("8 bytes"));
            (t as usize, e)
        })
        .collect()
}

/// Deterministic seed for a given (app, slot, image) — verification
/// regenerates the identical input.
pub fn texture_image_seed(app: &str, slot: u32, image: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in app.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((slot as u64) << 32) ^ image as u64
}

impl Process for TextureApp {
    fn kind(&self) -> &'static str {
        "texture-app"
    }

    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        let token = self.read_token(ctx);
        // Re-create the shell with the persisted token (cheap; the shell
        // has not been started yet).
        let launch = self.shell.launch.clone();
        self.shell = AppShell::new(launch, token, self.params.pi_period);
        self.shell.on_start(ctx);
        self.advance(ctx);
    }

    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        let _ = self.shell.on_message(&msg, ctx);
        self.advance(ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        let _ = self.shell.on_timer(tag, ctx);
        self.advance(ctx);
    }

    fn on_work_done(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        if tag != WORK_PHASE || self.shell.finished() {
            return;
        }
        if !self.heap_guard(ctx) {
            return;
        }
        match self.phase.clone() {
            Phase::Load { working: true } => self.finish_load(ctx),
            Phase::Filter { f, working: true } => self.finish_filter(f, ctx),
            Phase::Cluster { working: true } => self.finish_cluster(ctx),
            Phase::Write { working: true } => self.finish_write(ctx),
            _ => {}
        }
        self.advance(ctx);
    }

    fn heap(&mut self) -> Option<&mut dyn HeapModel> {
        Some(self)
    }
}

impl HeapModel for TextureApp {
    fn region_names(&self) -> Vec<String> {
        vec!["image".into(), "features".into(), "ctrl".into()]
    }

    fn flip_bit(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit> {
        self.heap.flip(rng, target)
    }
}

impl std::fmt::Debug for TextureApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TextureApp")
            .field("rank", &self.shell.launch.rank)
            .field("phase", &self.phase)
            .field("image", &self.image_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_nominal_time_is_about_75s() {
        let p = TextureParams::default();
        let t = p.nominal_per_image().as_secs_f64();
        assert!((60.0..90.0).contains(&t), "nominal {t}");
    }

    #[test]
    fn token_parsing() {
        assert_eq!(parse_token("2,1"), (2, 1));
        assert_eq!(parse_token(""), (0, 0));
        assert_eq!(parse_token("junk"), (0, 0));
    }

    #[test]
    fn energy_encoding_roundtrip() {
        let tiles = vec![(0usize, 1.5), (7, -0.25), (63, 1e9)];
        assert_eq!(decode_energies(&encode_energies(&tiles)), tiles);
    }

    #[test]
    fn image_seed_distinguishes_everything() {
        let a = texture_image_seed("texture", 0, 0);
        let b = texture_image_seed("texture", 0, 1);
        let c = texture_image_seed("texture", 1, 0);
        let d = texture_image_seed("otis", 0, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
