//! The application heap model: real science data exposed to bit flips.
//!
//! Table 10's result — 981 of 1,000 heap flips had no effect because
//! "data on the heap were mostly floating point matrices, and single-bit
//! flips in floating point variables often did not substantially change
//! the value (only the precision)" — requires that injections land in the
//! *actual* `f64`s the pipeline computes with. A small control block
//! (dimensions, a status-block pointer) models the non-matrix heap whose
//! corruption crashes the process.

use ree_os::{FieldKind, HeapHit, HeapTarget};
use ree_sim::SimRng;

/// Alignment valid status-block pointers satisfy.
pub const APP_PTR_ALIGN: u64 = 4096;

/// Science-process heap: matrices plus a control block.
#[derive(Clone, Debug)]
pub struct SciHeap {
    /// The working image (row-major pixels).
    pub image: Vec<f64>,
    /// The accumulated feature matrix.
    pub features: Vec<f64>,
    /// Expected image width (pixels).
    pub width: u64,
    /// Expected image height (pixels).
    pub height: u64,
    /// Pointer to the SIFT status block (must stay aligned).
    pub status_ptr: u64,
    /// Current work-item index.
    pub cursor: u64,
    /// Relative likelihood of a flip landing in the control block
    /// instead of the matrices (the matrices dominate the real heap).
    ctrl_weight: f64,
}

impl SciHeap {
    /// Creates an empty heap for a `side`×`side` image.
    pub fn new(side: u64) -> Self {
        SciHeap {
            image: Vec::new(),
            features: Vec::new(),
            width: side,
            height: side,
            status_ptr: 16 * APP_PTR_ALIGN,
            cursor: 0,
            ctrl_weight: 0.012,
        }
    }

    /// True if the status-block pointer was corrupted — dereferencing it
    /// crashes the process.
    pub fn ptr_fault(&self) -> bool {
        !self.status_ptr.is_multiple_of(APP_PTR_ALIGN)
    }

    /// True if the recorded dimensions no longer match `side` — indexing
    /// with them faults.
    pub fn dims_fault(&self, side: u64) -> bool {
        self.width != side || self.height != side
    }

    /// Flips one bit according to `target`; mirrors the ARMOR heap-model
    /// contract.
    pub fn flip(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit> {
        let allow_ptr = matches!(target, HeapTarget::Any);
        let want_region = match target {
            HeapTarget::Region(name) => Some(name.as_str()),
            _ => None,
        };
        // Pick a region: control block with small fixed probability,
        // otherwise matrices weighted by element count.
        let in_ctrl = match want_region {
            Some("ctrl") => true,
            Some(_) => false,
            None => rng.chance(self.ctrl_weight),
        };
        if in_ctrl {
            let mut slots: Vec<&str> = vec!["width", "height", "cursor"];
            if allow_ptr {
                slots.push("status_ptr");
            }
            let slot = slots[rng.index(slots.len())];
            let bit = rng.below(64);
            let (field, kind) = match slot {
                "width" => {
                    self.width ^= 1 << bit.min(31);
                    ("ctrl/width", FieldKind::Data)
                }
                "height" => {
                    self.height ^= 1 << bit.min(31);
                    ("ctrl/height", FieldKind::Data)
                }
                "cursor" => {
                    self.cursor ^= 1 << bit.min(31);
                    ("ctrl/cursor", FieldKind::Data)
                }
                _ => {
                    self.status_ptr ^= 1 << bit.min(31);
                    ("ctrl/status_ptr", FieldKind::Pointer)
                }
            };
            return Some(HeapHit { region: "ctrl".into(), field: field.into(), kind });
        }
        let image_len = self.image.len();
        let feat_len = self.features.len();
        let total = image_len + feat_len;
        if total == 0 {
            return None;
        }
        let idx = rng.index(total);
        let bit = rng.below(64);
        let (region, field, value) = if idx < image_len {
            ("image", format!("image/{idx}"), &mut self.image[idx])
        } else {
            (
                "features",
                format!("features/{}", idx - image_len),
                &mut self.features[idx - image_len],
            )
        };
        *value = f64::from_bits(value.to_bits() ^ (1 << bit));
        Some(HeapHit { region: region.into(), field, kind: FieldKind::Data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_data() -> SciHeap {
        let mut h = SciHeap::new(8);
        h.image = vec![0.5; 64];
        h.features = vec![1.0; 12];
        h
    }

    #[test]
    fn fresh_heap_has_no_faults() {
        let h = SciHeap::new(8);
        assert!(!h.ptr_fault());
        assert!(!h.dims_fault(8));
    }

    #[test]
    fn most_flips_hit_matrices() {
        let mut h = heap_with_data();
        let mut rng = SimRng::new(1);
        let mut matrix_hits = 0;
        for _ in 0..1000 {
            let hit = h.flip(&mut rng, &HeapTarget::Any).unwrap();
            if hit.region != "ctrl" {
                matrix_hits += 1;
            }
        }
        assert!(matrix_hits > 950, "matrix hits {matrix_hits}/1000");
    }

    #[test]
    fn ctrl_flips_cause_detectable_faults() {
        let mut rng = SimRng::new(2);
        let mut ptr_faults = 0;
        let mut dim_faults = 0;
        for _ in 0..200 {
            let mut h = heap_with_data();
            let hit = h.flip(&mut rng, &HeapTarget::Region("ctrl".into())).unwrap();
            assert_eq!(hit.region, "ctrl");
            if h.ptr_fault() {
                ptr_faults += 1;
            }
            if h.dims_fault(8) {
                dim_faults += 1;
            }
        }
        // Region("ctrl") targets data only, so no pointer faults, but
        // width/height flips must fault.
        assert_eq!(ptr_faults, 0);
        assert!(dim_faults > 50, "dim faults {dim_faults}");
    }

    #[test]
    fn any_target_can_corrupt_the_pointer() {
        let mut rng = SimRng::new(3);
        let mut ptr_faults = 0;
        for _ in 0..3000 {
            let mut h = heap_with_data();
            let _ = h.flip(&mut rng, &HeapTarget::Any);
            if h.ptr_fault() {
                ptr_faults += 1;
            }
        }
        assert!(ptr_faults > 0, "pointer must occasionally be hit");
        assert!(ptr_faults < 60, "but rarely ({ptr_faults}/3000)");
    }

    #[test]
    fn matrix_flip_changes_exactly_one_bit() {
        let mut h = heap_with_data();
        let mut rng = SimRng::new(4);
        let before_img = h.image.clone();
        let before_feat = h.features.clone();
        // Force a matrix hit by retrying until not ctrl.
        loop {
            let hit = h.flip(&mut rng, &HeapTarget::DataOnly).unwrap();
            if hit.region == "ctrl" {
                continue;
            }
            break;
        }
        let img_bits: u32 = h
            .image
            .iter()
            .zip(&before_img)
            .map(|(a, b)| (a.to_bits() ^ b.to_bits()).count_ones())
            .sum();
        let feat_bits: u32 = h
            .features
            .iter()
            .zip(&before_feat)
            .map(|(a, b)| (a.to_bits() ^ b.to_bits()).count_ones())
            .sum();
        assert_eq!(img_bits + feat_bits, 1);
    }

    #[test]
    fn empty_heap_flip_returns_none_for_matrices() {
        let mut h = SciHeap::new(8);
        let mut rng = SimRng::new(77);
        // With no matrix data, non-ctrl flips return None.
        let mut any_none = false;
        for _ in 0..50 {
            if h.flip(&mut rng, &HeapTarget::DataOnly).is_none() {
                any_none = true;
            }
        }
        assert!(any_none);
    }
}
