//! # ree-mpi — miniature MPI substrate for the simulated REE cluster
//!
//! The paper's applications are MPI programs \[23\] run by MPICH-style
//! launch: "the MPI process with rank 0 — per the MPI implementation's
//! protocol — remotely launches the remaining MPI processes on the other
//! nodes" (Table 1 step 5). This crate provides the messaging half the
//! applications need:
//!
//! * tagged point-to-point sends between ranks ([`MpiEndpoint::send`]);
//! * buffered receives with explicit matching ([`MpiEndpoint::try_recv`])
//!   — applications are event-driven state machines, so a "blocking"
//!   receive is simply a state that waits until the matching message
//!   arrives (the tight coupling that propagates stalls between ranks,
//!   §5.2);
//! * the init-barrier bookkeeping rank 0 uses while gathering peer
//!   hellos, including the startup timeout whose expiry aborts the whole
//!   application (the Figure 8 correlated-failure mechanism).
//!
//! Process *launch* itself is ordinary [`ree_os`] spawning done by the
//! applications (rank 0 holds the factory in its launch descriptor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ree_os::{Message, Pid, ProcCtx};
use std::collections::VecDeque;

/// Payload of an MPI message.
#[derive(Clone, Debug, PartialEq)]
pub enum MpiPayload {
    /// A vector of doubles (feature vectors, image rows).
    F64s(Vec<f64>),
    /// Raw bytes (compressed products).
    Bytes(Vec<u8>),
    /// Small control strings (hellos, phase barriers).
    Text(String),
    /// Empty payload.
    Unit,
}

impl MpiPayload {
    /// Approximate serialized size in bytes (drives the network model).
    pub fn wire_size(&self) -> u64 {
        match self {
            MpiPayload::F64s(v) => 16 + 8 * v.len() as u64,
            MpiPayload::Bytes(b) => 16 + b.len() as u64,
            MpiPayload::Text(s) => 16 + s.len() as u64,
            MpiPayload::Unit => 16,
        }
    }

    /// Extracts doubles, if that is what this payload is.
    pub fn into_f64s(self) -> Option<Vec<f64>> {
        match self {
            MpiPayload::F64s(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts bytes, if that is what this payload is.
    pub fn into_bytes(self) -> Option<Vec<u8>> {
        match self {
            MpiPayload::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

/// One tagged message between ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct MpiMsg {
    /// Sending rank.
    pub from_rank: u32,
    /// Application-defined tag.
    pub tag: u32,
    /// The data.
    pub payload: MpiPayload,
}

/// Per-process MPI state: peer pids, receive buffer, init bookkeeping.
#[derive(Debug, Clone)]
pub struct MpiEndpoint {
    rank: u32,
    size: u32,
    peers: Vec<Option<Pid>>,
    inbox: VecDeque<MpiMsg>,
    sends: u64,
    receives: u64,
}

impl MpiEndpoint {
    /// Creates the endpoint for `rank` of `size`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= size` or `size == 0`.
    pub fn new(rank: u32, size: u32) -> Self {
        assert!(size > 0 && rank < size, "rank {rank} out of range for size {size}");
        MpiEndpoint {
            rank,
            size,
            peers: vec![None; size as usize],
            inbox: VecDeque::new(),
            sends: 0,
            receives: 0,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Registers a peer's pid (learned during launch).
    pub fn set_peer(&mut self, rank: u32, pid: Pid) {
        if let Some(slot) = self.peers.get_mut(rank as usize) {
            *slot = Some(pid);
        }
    }

    /// A peer's pid, if known.
    pub fn peer(&self, rank: u32) -> Option<Pid> {
        self.peers.get(rank as usize).copied().flatten()
    }

    /// True once every peer rank is known (rank-0 init barrier).
    pub fn all_peers_known(&self) -> bool {
        (0..self.size).filter(|r| *r != self.rank).all(|r| self.peers[r as usize].is_some())
    }

    /// Sends `payload` to `to_rank` with `tag`. Silently dropped if the
    /// peer is unknown or dead (MPI-level faults surface as stalls, which
    /// the SIFT hang detection owns).
    pub fn send(&mut self, os: &mut ProcCtx<'_>, to_rank: u32, tag: u32, payload: MpiPayload) {
        let Some(pid) = self.peer(to_rank) else {
            os.trace(ree_os::TraceDetail::MpiUnknownRank { rank: self.rank, to_rank });
            return;
        };
        self.sends += 1;
        let size = payload.wire_size();
        os.send(pid, "mpi", size, MpiMsg { from_rank: self.rank, tag, payload });
    }

    /// Feeds an OS message; returns `true` if it was an MPI message (now
    /// buffered).
    pub fn on_message(&mut self, msg: &Message) -> bool {
        if msg.label != "mpi" {
            return false;
        }
        if let Some(m) = msg.peek::<MpiMsg>() {
            self.receives += 1;
            self.inbox.push_back(m.clone());
            true
        } else {
            false
        }
    }

    /// Removes and returns the first buffered message matching `from`
    /// (or any rank if `None`) and `tag`.
    pub fn try_recv(&mut self, from: Option<u32>, tag: u32) -> Option<MpiMsg> {
        let idx = self
            .inbox
            .iter()
            .position(|m| m.tag == tag && from.map(|f| f == m.from_rank).unwrap_or(true))?;
        self.inbox.remove(idx)
    }

    /// Number of buffered (unmatched) messages.
    pub fn backlog(&self) -> usize {
        self.inbox.len()
    }

    /// Lifetime `(sends, receives)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.sends, self.receives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_scale() {
        assert!(MpiPayload::F64s(vec![0.0; 100]).wire_size() > MpiPayload::Unit.wire_size());
        assert_eq!(MpiPayload::Bytes(vec![0; 10]).wire_size(), 26);
        assert_eq!(MpiPayload::Text("abc".into()).wire_size(), 19);
    }

    #[test]
    fn endpoint_peer_bookkeeping() {
        let mut ep = MpiEndpoint::new(0, 3);
        assert!(!ep.all_peers_known());
        ep.set_peer(1, Pid(11));
        ep.set_peer(2, Pid(12));
        assert!(ep.all_peers_known());
        assert_eq!(ep.peer(1), Some(Pid(11)));
        assert_eq!(ep.peer(9), None);
    }

    #[test]
    fn recv_matches_tag_and_source() {
        let mut ep = MpiEndpoint::new(1, 2);
        ep.inbox.push_back(MpiMsg { from_rank: 0, tag: 7, payload: MpiPayload::Unit });
        ep.inbox.push_back(MpiMsg { from_rank: 0, tag: 8, payload: MpiPayload::Text("x".into()) });
        assert!(ep.try_recv(Some(0), 9).is_none());
        let m = ep.try_recv(Some(0), 8).unwrap();
        assert_eq!(m.payload, MpiPayload::Text("x".into()));
        assert_eq!(ep.backlog(), 1);
        // Any-source receive.
        assert!(ep.try_recv(None, 7).is_some());
        assert_eq!(ep.backlog(), 0);
    }

    #[test]
    fn payload_extractors() {
        assert_eq!(MpiPayload::F64s(vec![1.0]).into_f64s(), Some(vec![1.0]));
        assert_eq!(MpiPayload::Unit.into_f64s(), None);
        assert_eq!(MpiPayload::Bytes(vec![1]).into_bytes(), Some(vec![1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let _ = MpiEndpoint::new(3, 3);
    }
}
