//! Shard accounting for distributed campaign sweeps.
//!
//! A distributed supervisor (`ree-dist`) shards a campaign's seed range
//! into batches and hands them to worker processes; workers crash, hang,
//! and get quarantined, and batches get re-queued. [`ShardLedger`]
//! records who actually did what — per-worker batch/run counters,
//! per-batch wall-clock summaries, failure and retry tallies, and the
//! runs that fell back to in-process execution — so the supervisor's
//! operational report is separable from the (deterministic) campaign
//! aggregate. Everything here is bookkeeping about *real* time and
//! *real* processes; nothing in it feeds back into the simulated
//! results, which stay byte-identical regardless of how work was
//! sharded.

use crate::summary::Summary;
use crate::table::TableBuilder;

/// What one worker shard did over a distributed campaign.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Batches this worker completed successfully.
    pub batches_done: u64,
    /// Runs inside those completed batches.
    pub runs_done: u64,
    /// Failures attributed to this worker (crash, hang past the stall
    /// timeout, corrupt frame, or an error frame for its batch).
    pub failures: u64,
    /// Was the worker quarantined (failed its batch twice)?
    pub quarantined: bool,
    /// Wall-clock seconds per completed batch.
    pub batch_wall: Summary,
}

/// Per-worker [`ShardStats`] plus campaign-wide supervision tallies.
///
/// # Examples
///
/// ```
/// use ree_stats::ShardLedger;
/// let mut ledger = ShardLedger::new(2);
/// ledger.record_batch(0, 32, 1.5);
/// ledger.record_failure(1);
/// ledger.record_requeue();
/// assert_eq!(ledger.runs_done(), 32);
/// assert_eq!(ledger.shard(1).failures, 1);
/// assert!(ledger.render().contains("WORKER"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardLedger {
    shards: Vec<ShardStats>,
    /// Batches re-queued after a worker failure or deadline miss.
    pub requeued: u64,
    /// Runs executed in-process after the worker pool was lost or a
    /// batch exhausted its retry budget.
    pub fallback_runs: u64,
}

impl ShardLedger {
    /// A ledger for `workers` shards, all idle.
    pub fn new(workers: usize) -> Self {
        ShardLedger { shards: vec![ShardStats::default(); workers], requeued: 0, fallback_runs: 0 }
    }

    /// Number of worker shards tracked.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// One shard's stats.
    pub fn shard(&self, worker: usize) -> &ShardStats {
        &self.shards[worker]
    }

    /// All shards, indexed by worker id.
    pub fn shards(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Records a batch of `runs` completed by `worker` in `wall_secs`
    /// of real time.
    pub fn record_batch(&mut self, worker: usize, runs: u64, wall_secs: f64) {
        let s = &mut self.shards[worker];
        s.batches_done += 1;
        s.runs_done += runs;
        s.batch_wall.push(wall_secs);
    }

    /// Records a failure attributed to `worker`.
    pub fn record_failure(&mut self, worker: usize) {
        self.shards[worker].failures += 1;
    }

    /// Marks `worker` quarantined.
    pub fn quarantine(&mut self, worker: usize) {
        self.shards[worker].quarantined = true;
    }

    /// Records a batch being re-queued for another worker.
    pub fn record_requeue(&mut self) {
        self.requeued += 1;
    }

    /// Records `runs` executed in-process as a fallback.
    pub fn record_fallback(&mut self, runs: u64) {
        self.fallback_runs += runs;
    }

    /// Total runs completed by workers (excluding fallback runs).
    pub fn runs_done(&self) -> u64 {
        self.shards.iter().map(|s| s.runs_done).sum()
    }

    /// Total failures across all shards.
    pub fn failures(&self) -> u64 {
        self.shards.iter().map(|s| s.failures).sum()
    }

    /// Number of quarantined workers.
    pub fn quarantined(&self) -> usize {
        self.shards.iter().filter(|s| s.quarantined).count()
    }

    /// Renders the per-shard table plus the supervision tallies — the
    /// operational report a supervisor prints to stderr after a sweep.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "WORKER",
            "BATCHES",
            "RUNS",
            "FAILURES",
            "WALL/BATCH (s)",
            "STATE",
        ]);
        for (i, s) in self.shards.iter().enumerate() {
            t.row(vec![
                format!("w{i}"),
                s.batches_done.to_string(),
                s.runs_done.to_string(),
                s.failures.to_string(),
                if s.batches_done > 0 { format!("{:.3}", s.batch_wall.mean()) } else { "-".into() },
                if s.quarantined { "quarantined".into() } else { "ok".into() },
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "batches re-queued: {}   fallback runs (in-process): {}\n",
            self.requeued, self.fallback_runs
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tallies() {
        let mut ledger = ShardLedger::new(3);
        ledger.record_batch(0, 16, 0.5);
        ledger.record_batch(0, 16, 0.7);
        ledger.record_batch(2, 16, 0.6);
        ledger.record_failure(1);
        ledger.record_failure(1);
        ledger.quarantine(1);
        ledger.record_requeue();
        ledger.record_requeue();
        ledger.record_fallback(16);
        assert_eq!(ledger.runs_done(), 48);
        assert_eq!(ledger.failures(), 2);
        assert_eq!(ledger.quarantined(), 1);
        assert_eq!(ledger.requeued, 2);
        assert_eq!(ledger.fallback_runs, 16);
        assert_eq!(ledger.shard(0).batches_done, 2);
        assert!((ledger.shard(0).batch_wall.mean() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_worker_and_state() {
        let mut ledger = ShardLedger::new(2);
        ledger.record_batch(0, 8, 0.25);
        ledger.record_failure(1);
        ledger.quarantine(1);
        let text = ledger.render();
        assert!(text.contains("w0"), "{text}");
        assert!(text.contains("w1"), "{text}");
        assert!(text.contains("quarantined"), "{text}");
        assert!(text.contains("re-queued"), "{text}");
    }

    #[test]
    fn empty_ledger_renders() {
        let text = ShardLedger::new(0).render();
        assert!(text.contains("WORKER"), "{text}");
    }
}
