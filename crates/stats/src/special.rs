//! Special functions: log-gamma, regularised incomplete beta, and the
//! Student-t distribution built from them.

/// Natural log of the gamma function (Lanczos approximation, g=7).
///
/// Accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof` is not positive.
pub fn t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    let x = dof / (dof + t * t);
    let p = 0.5 * inc_beta(dof / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// [`t_cdf`].
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1 or `dof` is not
/// positive.
pub fn t_quantile(p: f64, dof: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    let mut lo = -1e6;
    let mut hi = 1e6;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Quantile (inverse CDF) of the standard normal distribution, via
/// Acklam's rational approximation refined with one Halley step on the
/// complementary error function (absolute error far below 1e-9 —
/// indistinguishable from exact for interval work).
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn z_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of the standard normal distribution (via [`inc_beta`]-free
/// complementary-error-function series/continued-fraction split).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, ~1e-12 relative accuracy, using the
/// Chebyshev-fitted expression of Numerical Recipes (`erfc_cheb`)
/// squared through one Newton polish against the series near 0.
fn erfc(x: f64) -> f64 {
    // NR 6.2.2 `erfcc`: fractional error everywhere below 1.2e-7, then
    // refined; ample for quantile work when followed by a Halley step.
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419697923564902e-1,
        1.9476473204185836e-2,
        -9.56151478680863e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12); // gamma(5)=4!
        close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-12);
    }

    #[test]
    fn inc_beta_symmetry_and_bounds() {
        close(inc_beta(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(inc_beta(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.37;
        close(inc_beta(2.5, 1.5, x), 1.0 - inc_beta(1.5, 2.5, 1.0 - x), 1e-12);
    }

    #[test]
    fn t_cdf_is_symmetric_and_monotone() {
        close(t_cdf(0.0, 7.0), 0.5, 1e-12);
        close(t_cdf(1.5, 7.0) + t_cdf(-1.5, 7.0), 1.0, 1e-12);
        assert!(t_cdf(2.0, 7.0) > t_cdf(1.0, 7.0));
    }

    #[test]
    fn t_quantiles_match_standard_tables() {
        // Two-sided 95% critical values.
        close(t_quantile(0.975, 1.0), 12.706, 1e-2);
        close(t_quantile(0.975, 5.0), 2.571, 1e-3);
        close(t_quantile(0.975, 10.0), 2.228, 1e-3);
        close(t_quantile(0.975, 29.0), 2.045, 1e-3);
        close(t_quantile(0.975, 99.0), 1.984, 1e-3);
        // Large dof approaches the normal quantile.
        close(t_quantile(0.975, 100000.0), 1.960, 1e-3);
        // One-sided.
        close(t_quantile(0.95, 9.0), 1.833, 1e-3);
    }

    #[test]
    fn normal_quantiles_match_standard_tables() {
        close(z_quantile(0.5), 0.0, 1e-12);
        close(z_quantile(0.975), 1.959963984540054, 1e-9);
        close(z_quantile(0.95), 1.6448536269514722, 1e-9);
        close(z_quantile(0.995), 2.5758293035489004, 1e-9);
        close(z_quantile(0.005), -2.5758293035489004, 1e-9);
        close(z_quantile(0.999999), 4.753424308822899, 1e-7);
        // Agrees with the t quantile in the large-dof limit.
        close(z_quantile(0.975), t_quantile(0.975, 5_000_000.0), 1e-4);
    }

    #[test]
    fn normal_cdf_round_trips_the_quantile() {
        for p in [0.001, 0.025, 0.3, 0.5, 0.8, 0.975, 0.9999] {
            close(normal_cdf(z_quantile(p)), p, 1e-12);
        }
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-14);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.6, 0.9, 0.975, 0.999] {
            for dof in [3.0, 17.0, 99.0] {
                let t = t_quantile(p, dof);
                close(t_cdf(t, dof), p, 1e-8);
            }
        }
    }
}
