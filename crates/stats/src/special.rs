//! Special functions: log-gamma, regularised incomplete beta, and the
//! Student-t distribution built from them.

/// Natural log of the gamma function (Lanczos approximation, g=7).
///
/// Accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof` is not positive.
pub fn t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    let x = dof / (dof + t * t);
    let p = 0.5 * inc_beta(dof / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// [`t_cdf`].
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1 or `dof` is not
/// positive.
pub fn t_quantile(p: f64, dof: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    let mut lo = -1e6;
    let mut hi = 1e6;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12); // gamma(5)=4!
        close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-12);
    }

    #[test]
    fn inc_beta_symmetry_and_bounds() {
        close(inc_beta(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(inc_beta(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.37;
        close(inc_beta(2.5, 1.5, x), 1.0 - inc_beta(1.5, 2.5, 1.0 - x), 1e-12);
    }

    #[test]
    fn t_cdf_is_symmetric_and_monotone() {
        close(t_cdf(0.0, 7.0), 0.5, 1e-12);
        close(t_cdf(1.5, 7.0) + t_cdf(-1.5, 7.0), 1.0, 1e-12);
        assert!(t_cdf(2.0, 7.0) > t_cdf(1.0, 7.0));
    }

    #[test]
    fn t_quantiles_match_standard_tables() {
        // Two-sided 95% critical values.
        close(t_quantile(0.975, 1.0), 12.706, 1e-2);
        close(t_quantile(0.975, 5.0), 2.571, 1e-3);
        close(t_quantile(0.975, 10.0), 2.228, 1e-3);
        close(t_quantile(0.975, 29.0), 2.045, 1e-3);
        close(t_quantile(0.975, 99.0), 1.984, 1e-3);
        // Large dof approaches the normal quantile.
        close(t_quantile(0.975, 100000.0), 1.960, 1e-3);
        // One-sided.
        close(t_quantile(0.95, 9.0), 1.833, 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.6, 0.9, 0.975, 0.999] {
            for dof in [3.0, 17.0, 99.0] {
                let t = t_quantile(p, dof);
                close(t_cdf(t, dof), p, 1e-8);
            }
        }
    }
}
