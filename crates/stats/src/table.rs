//! ASCII table rendering for the reproduction reports (the `repro`
//! binary prints rows shaped like the paper's tables).

/// Formats `mean ± ci` with fixed precision.
pub fn format_pm(mean: f64, ci: f64) -> String {
    format!("{mean:.2} ± {ci:.2}")
}

/// A simple fixed-column ASCII table builder.
///
/// # Examples
///
/// ```
/// use ree_stats::TableBuilder;
/// let mut t = TableBuilder::new(vec!["TARGET", "RUNS"]);
/// t.row(vec!["ftm".into(), "100".into()]);
/// let text = t.render();
/// assert!(text.contains("TARGET"));
/// assert!(text.contains("ftm"));
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TableBuilder {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TableBuilder {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(vec!["A", "LONG-HEADER"]).with_title("Table X");
        t.row(vec!["wide-cell-content".into(), "1".into()]);
        t.row(vec!["x".into()]);
        let text = t.render();
        assert!(text.starts_with("Table X\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn format_pm_rounds() {
        assert_eq!(format_pm(75.7133, 0.6543), "75.71 ± 0.65");
    }
}
