//! # ree-stats — statistics for the injection experiments
//!
//! The paper reports means with "ninety-five percent confidence intervals
//! (t-distribution)" (§4.2) and bounds unobserved failure probabilities
//! with `p < 1 − 0.95^(1/n)` (§5). Both are implemented here from first
//! principles (no lookup tables): the Student-t quantile comes from
//! inverting the regularised incomplete beta function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod special;
mod summary;
mod table;

pub use special::{inc_beta, ln_gamma, t_cdf, t_quantile};
pub use summary::{no_failure_upper_bound, Summary};
pub use table::{format_pm, TableBuilder};
