//! # ree-stats — statistics for the injection experiments
//!
//! The paper reports means with "ninety-five percent confidence intervals
//! (t-distribution)" (§4.2) and bounds unobserved failure probabilities
//! with `p < 1 − 0.95^(1/n)` (§5). Both are implemented here from first
//! principles (no lookup tables): the Student-t quantile comes from
//! inverting the regularised incomplete beta function.
//!
//! Adaptive confidence-targeted campaigns additionally need interval
//! math on *proportions* (recovery rate, failure rate): [`Proportion`]
//! carries Wilson score intervals ([`Proportion::wilson`]), built on
//! the normal quantile [`z_quantile`], and [`Summary::merge`] combines
//! two streaming summaries so aggregates can be accumulated batch-wise
//! or across shards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proportion;
mod shard;
mod special;
mod summary;
mod table;

pub use proportion::Proportion;
pub use shard::{ShardLedger, ShardStats};
pub use special::{inc_beta, ln_gamma, normal_cdf, t_cdf, t_quantile, z_quantile};
pub use summary::{no_failure_upper_bound, Summary};
pub use table::{format_pm, TableBuilder};
