//! Binomial proportions with Wilson score confidence intervals — the
//! interval math behind confidence-targeted adaptive campaigns.
//!
//! The paper's tables report proportions (recovery rate, failure rate)
//! out of a fixed number of runs; an adaptive campaign instead runs each
//! sweep arm until the interval around its key proportion is tight. The
//! Wilson score interval is used rather than the Wald interval because
//! campaign proportions sit near 0 or 1 (the paper's headline is "every
//! injected error was recovered"), exactly where the Wald interval
//! degenerates to zero width and stops a sweep on no evidence.

use crate::special::z_quantile;

/// A binomial proportion: `successes` out of `trials`.
///
/// # Examples
///
/// ```
/// use ree_stats::Proportion;
/// let p = Proportion::new(48, 50);
/// assert_eq!(p.point(), 0.96);
/// let (lo, hi) = p.wilson(0.95);
/// assert!(lo > 0.85 && hi <= 1.0);
/// assert!(p.wilson_half_width(0.95) < 0.07);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Proportion {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials observed.
    pub trials: u64,
}

impl Proportion {
    /// Creates a proportion of `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes {successes} > trials {trials}");
        Proportion { successes, trials }
    }

    /// Point estimate `successes / trials` (0 for zero trials).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval `(lo, hi)` at the given two-sided
    /// confidence level (e.g. `0.95`).
    ///
    /// For zero trials the interval is the vacuous `(0, 1)`: no evidence
    /// constrains nothing, which is what makes a stopping rule on the
    /// half-width safe before the first batch lands.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not strictly between 0 and 1.
    pub fn wilson(&self, confidence: f64) -> (f64, f64) {
        assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.point();
        let z = z_quantile(0.5 + confidence / 2.0);
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - half).max(0.0), (centre + half).min(1.0))
    }

    /// Half the width of the Wilson interval — the adaptive stopping
    /// rule's "±x% at such-and-such confidence" quantity. `0.5` (the
    /// widest possible) for zero trials.
    pub fn wilson_half_width(&self, confidence: f64) -> f64 {
        let (lo, hi) = self.wilson(confidence);
        (hi - lo) / 2.0
    }

    /// `point ± half-width` rendered as a percentage, table-style.
    pub fn display_pct(&self, confidence: f64) -> String {
        format!("{:.1}% ± {:.1}%", self.point() * 100.0, self.wilson_half_width(confidence) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimates() {
        assert_eq!(Proportion::new(0, 0).point(), 0.0);
        assert_eq!(Proportion::new(1, 2).point(), 0.5);
        assert_eq!(Proportion::new(10, 10).point(), 1.0);
    }

    #[test]
    fn wilson_matches_reference_values() {
        // Reference: Wilson (1927) interval for k=8, n=10 at 95%:
        // (0.490, 0.943) — e.g. statsmodels proportion_confint(8, 10,
        // method="wilson").
        let (lo, hi) = Proportion::new(8, 10).wilson(0.95);
        assert!((lo - 0.4901).abs() < 1e-3, "lo {lo}");
        assert!((hi - 0.9433).abs() < 1e-3, "hi {hi}");
    }

    #[test]
    fn wilson_is_informative_at_the_boundaries() {
        // k = n: the Wald interval collapses to zero width; Wilson keeps
        // ~z^2/n of slack below 1.
        let p = Proportion::new(100, 100);
        let (lo, hi) = p.wilson(0.95);
        assert_eq!(hi, 1.0);
        assert!(lo < 1.0 && lo > 0.94, "lo {lo}");
        // Symmetric at k = 0.
        let q = Proportion::new(0, 100);
        let (lo0, hi0) = q.wilson(0.95);
        assert_eq!(lo0, 0.0);
        assert!((hi0 - (1.0 - lo)).abs() < 1e-12, "Wilson must be symmetric under k -> n-k");
    }

    #[test]
    fn zero_trials_is_vacuous() {
        let p = Proportion::default();
        assert_eq!(p.wilson(0.95), (0.0, 1.0));
        assert_eq!(p.wilson_half_width(0.95), 0.5);
    }

    #[test]
    fn half_width_shrinks_with_trials() {
        let mut last = 0.5;
        for n in [10u64, 40, 160, 640, 2560] {
            let hw = Proportion::new(n / 2, n).wilson_half_width(0.95);
            assert!(hw < last, "half-width must shrink: {hw} !< {last}");
            last = hw;
        }
        // And the classic planning numbers: ±2% at 95% for p=0.5 needs
        // ~2400 trials; for p=1.0 roughly z^2/(2n) => ~96 trials.
        assert!(Proportion::new(1200, 2400).wilson_half_width(0.95) < 0.02);
        assert!(Proportion::new(1100, 2200).wilson_half_width(0.95) > 0.02);
        assert!(Proportion::new(100, 100).wilson_half_width(0.95) < 0.02);
    }

    #[test]
    fn interval_contains_the_point_estimate() {
        for (k, n) in [(0u64, 7u64), (1, 7), (3, 7), (7, 7), (250, 512)] {
            let p = Proportion::new(k, n);
            let (lo, hi) = p.wilson(0.95);
            assert!(lo <= p.point() + 1e-12 && p.point() <= hi + 1e-12, "({k},{n})");
        }
    }
}
