//! Sample summaries with 95% t-confidence intervals, and the paper's
//! zero-failure probability bound.

use crate::special::t_quantile;

/// A running sample summary (mean, deviation, 95% CI).
///
/// # Examples
///
/// ```
/// use ree_stats::Summary;
/// let s: Summary = [74.0, 75.0, 76.0].into_iter().collect();
/// assert_eq!(s.mean(), 75.0);
/// assert!(s.ci95() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`]. (A derived default would zero the
    /// min/max sentinels, silently clamping `min()` of any
    /// default-constructed summary to ≤ 0.)
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation (Welford's online update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one, as if every observation of
    /// `other` had been [`push`](Summary::push)ed here (Chan et al.'s
    /// parallel Welford combination). Associative and commutative up to
    /// floating-point rounding, with [`Summary::new`] as identity —
    /// which is what lets campaign aggregates be folded batch-wise, or
    /// sharded across processes and combined.
    ///
    /// # Examples
    ///
    /// ```
    /// use ree_stats::Summary;
    /// let mut left: Summary = [1.0, 2.0].into_iter().collect();
    /// let right: Summary = [3.0, 4.0].into_iter().collect();
    /// left.merge(&right);
    /// assert_eq!(left.n(), 4);
    /// assert_eq!(left.mean(), 2.5);
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval on the mean
    /// (t-distribution, as in the paper §4.2).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_quantile(0.975, (self.n - 1) as f64);
        t * self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `mean ± ci95` rendered like the paper's tables.
    pub fn display_pm(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean(), self.ci95())
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// The paper's §5 bound: observing zero failures in `n` runs implies,
/// with 95% confidence, a per-run failure probability below
/// `1 − 0.95^(1/n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn no_failure_upper_bound(n: u64) -> f64 {
    assert!(n > 0, "need at least one run");
    1.0 - 0.95_f64.powf(1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_std() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.n(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let small: Summary = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Summary = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let empty = Summary::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.ci95(), 0.0);
        let mut one = Summary::new();
        one.push(42.0);
        assert_eq!(one.mean(), 42.0);
        assert_eq!(one.ci95(), 0.0);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn paper_zero_failure_bound() {
        // §5: "With n = 734 runs ... less than 0.01% of all
        // SIGINT/SIGSTOP failures will be unrecoverable."
        let p = no_failure_upper_bound(734);
        assert!(p < 0.0001, "bound {p}");
        assert!(p > 0.00005, "bound {p} suspiciously small");
    }

    #[test]
    fn bound_decreases_with_n() {
        assert!(no_failure_upper_bound(100) > no_failure_upper_bound(1000));
    }

    #[test]
    fn default_tracks_min_like_new() {
        let mut s = Summary::default();
        s.push(74.0);
        s.push(76.0);
        assert_eq!(s.min(), 74.0, "default-constructed summary must not clamp min to 0");
        assert_eq!(s.max(), 76.0);
        assert_eq!(Summary::default(), Summary::new());
    }

    #[test]
    fn merge_matches_sequential_pushes() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let whole: Summary = xs.iter().copied().collect();
        for split in 0..=xs.len() {
            let mut left: Summary = xs[..split].iter().copied().collect();
            let right: Summary = xs[split..].iter().copied().collect();
            left.merge(&right);
            assert_eq!(left.n(), whole.n(), "split {split}");
            assert!((left.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!((left.std_dev() - whole.std_dev()).abs() < 1e-12, "split {split}");
            assert_eq!(left.min(), whole.min());
            assert_eq!(left.max(), whole.max());
        }
    }

    #[test]
    fn merge_identity_is_exact() {
        let s: Summary = [74.0, 75.5, 76.0].into_iter().collect();
        let mut a = s.clone();
        a.merge(&Summary::new());
        assert_eq!(a, s, "right identity must be bit-exact");
        let mut b = Summary::new();
        b.merge(&s);
        assert_eq!(b, s, "left identity must be bit-exact");
        let mut c = Summary::new();
        c.merge(&Summary::default());
        assert_eq!(c, Summary::new());
    }

    #[test]
    fn merge_is_associative_within_rounding() {
        let a: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Summary = [10.0, 20.0].into_iter().collect();
        let c: Summary = [0.5].into_iter().collect();
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.n(), a_bc.n());
        assert!((ab_c.mean() - a_bc.mean()).abs() < 1e-12);
        assert!((ab_c.std_dev() - a_bc.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let s: Summary = [74.0, 76.0].into_iter().collect();
        let text = s.display_pm();
        assert!(text.starts_with("75.00 ±"), "{text}");
    }
}
