//! Property-based tests on the ARMOR architecture's core invariants.

use proptest::prelude::*;
use ree_armor::{
    decode_fields, encode_fields, ArmorEvent, ArmorId, CheckpointBuffer, Fields, Inbound,
    ReliableComm, Value,
};
use ree_sim::{SimDuration, SimRng, SimTime};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        any::<f64>().prop_filter("total order", |f| !f.is_nan()).prop_map(Value::F64),
        "[a-z0-9_/.-]{0,24}".prop_map(Value::Str),
        (0u64..1 << 40).prop_map(|v| Value::Ptr(v * 4096)),
    ];
    leaf.prop_recursive(3, 32, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(Value::Map),
        ]
    })
}

fn arb_fields() -> impl Strategy<Value = Fields> {
    proptest::collection::btree_map("[a-z_]{1,10}", arb_value(), 0..8).prop_map(|m| {
        let mut f = Fields::new();
        for (k, v) in m {
            f.set(k, v);
        }
        f
    })
}

proptest! {
    /// Checkpoint wire format round-trips arbitrary element state.
    #[test]
    fn fields_encode_decode_roundtrip(fields in arb_fields()) {
        let bytes = encode_fields(&fields);
        let back = decode_fields(&bytes).expect("well-formed image decodes");
        prop_assert_eq!(fields, back);
    }

    /// Bit flips never make state unreadable: a flipped leaf still
    /// encodes/decodes (semantic corruption, not structural).
    #[test]
    fn flipped_fields_still_encode(fields in arb_fields(), seed in any::<u64>()) {
        let mut fields = fields;
        let mut rng = SimRng::new(seed);
        let _ = fields.flip_random_leaf(&mut rng, None);
        let bytes = encode_fields(&fields);
        prop_assert!(decode_fields(&bytes).is_ok());
    }

    /// The checkpoint buffer's regions are disjoint: updating one element
    /// never perturbs another's stored image.
    #[test]
    fn checkpoint_regions_are_disjoint(
        a in arb_fields(),
        b in arb_fields(),
        a2 in arb_fields(),
    ) {
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b)]);
        let b_before = buf.region_image("b").unwrap().to_vec();
        buf.update("a", &a2);
        prop_assert_eq!(buf.region_image("b").unwrap(), b_before.as_slice());
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        let restored_a = &decoded.iter().find(|(n, _)| n == "a").unwrap().1;
        prop_assert_eq!(restored_a, &a2);
    }

    /// Reliable messaging delivers every message exactly once under
    /// arbitrary loss and duplication of packets/acks.
    #[test]
    fn comm_exactly_once_under_loss(
        n_msgs in 1usize..12,
        drops in proptest::collection::vec(any::<bool>(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let mut sender = ReliableComm::new(ArmorId(1), SimDuration::from_secs(1));
        let mut receiver = ReliableComm::new(ArmorId(2), SimDuration::from_secs(1));
        let mut delivered: Vec<u64> = Vec::new();
        // Send all messages; the "network" drops per the drops mask.
        let mut in_flight: Vec<ree_armor::WirePacket> = (0..n_msgs)
            .map(|i| {
                sender.send(
                    SimTime::ZERO,
                    ArmorId(2),
                    vec![ArmorEvent::new("m").with("i", Value::U64(i as u64))],
                )
            })
            .collect();
        let mut now = SimTime::ZERO;
        for round in 0..60 {
            let mut acks = Vec::new();
            for (k, pkt) in in_flight.drain(..).enumerate() {
                let dropped = drops[(round + k) % drops.len()] && round < 30;
                if dropped {
                    continue;
                }
                match receiver.on_packet(pkt) {
                    Inbound::Deliver(msg) => {
                        delivered.push(msg.events[0].u64("i").unwrap());
                        let ack = receiver.acknowledge(&msg);
                        // Acks can also be dropped.
                        if !(drops[(round * 7 + k) % drops.len()] && round < 30) {
                            acks.push(ack);
                        }
                    }
                    Inbound::DuplicateReAck(ack) => acks.push(ack),
                    _ => {}
                }
            }
            for ack in acks {
                let _ = sender.on_packet(ack);
            }
            now += SimDuration::from_secs(2);
            in_flight = sender.tick(now);
            if sender.pending_count() == 0 {
                break;
            }
            let _ = rng.next_u64();
        }
        prop_assert_eq!(sender.pending_count(), 0, "all messages eventually acked");
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), delivered.len(), "no duplicates delivered");
        prop_assert_eq!(delivered.len(), n_msgs, "every message delivered");
    }

    /// Incremental commits are indistinguishable from from-scratch
    /// encoding under arbitrary event sequences: every interleaving of
    /// region updates (including unchanged-state re-updates and
    /// length-changing updates, which exercise the clean-skip and
    /// full-rebuild paths) and commits must produce exactly the image a
    /// freshly built buffer over the same final states produces.
    #[test]
    fn incremental_encode_matches_from_scratch(
        ops in proptest::collection::vec(
            (0usize..3, arb_fields(), any::<bool>(), any::<bool>()),
            1..24,
        ),
    ) {
        let names = ["alpha", "beta", "gamma"];
        let empty = Fields::new();
        let mut live = CheckpointBuffer::new(names.iter().map(|n| (*n, &empty)));
        let mut states: Vec<Fields> = vec![Fields::new(); names.len()];
        let reference = |states: &[Fields]| {
            CheckpointBuffer::new(names.iter().zip(states).map(|(n, s)| (*n, s))).encode()
        };
        for (idx, fields, reuse_current, commit) in ops {
            // `reuse_current` re-checkpoints the unchanged state — the
            // clean-update path that must not dirty the region.
            let next = if reuse_current { states[idx].clone() } else { fields };
            prop_assert!(live.update(names[idx], &next));
            states[idx] = next;
            if commit {
                prop_assert_eq!(live.encode(), reference(&states));
            }
        }
        prop_assert_eq!(live.encode(), reference(&states));
    }

    /// A region whose encoded image changes length mid-sequence (string
    /// growth) keeps later regions' spans correct.
    #[test]
    fn incremental_encode_survives_length_changes(
        grow_by in 1usize..48,
        tail in arb_fields(),
    ) {
        let mut a = Fields::new();
        a.set("s", Value::Str("x".into()));
        let b = Fields::new();
        let mut live = CheckpointBuffer::new([("a", &a), ("b", &b)]);
        let _ = live.encode();
        let mut a2 = Fields::new();
        a2.set("s", Value::Str("x".repeat(1 + grow_by)));
        live.update("a", &a2);
        live.update("b", &tail);
        let incremental = live.encode();
        let reference = CheckpointBuffer::new([("a", &a2), ("b", &tail)]).encode();
        prop_assert_eq!(incremental, reference);
    }

    /// Sequence rebasing preserves monotonicity (reincarnation safety).
    #[test]
    fn rebase_is_monotone(bases in proptest::collection::vec(0u64..1 << 30, 1..10)) {
        let mut comm = ReliableComm::new(ArmorId(1), SimDuration::from_secs(1));
        let mut last_seq = 0;
        for base in bases {
            comm.rebase(base);
            let pkt = comm.send(SimTime::ZERO, ArmorId(2), vec![ArmorEvent::new("x")]);
            if let ree_armor::WirePacket::Data(m) = pkt {
                prop_assert!(m.seq > last_seq);
                prop_assert!(m.seq > base);
                last_seq = m.seq;
            }
        }
    }
}
