//! # ree-armor — the ARMOR architecture (Chameleon \[19\])
//!
//! Adaptive Reconfigurable Mobile Objects of Reliability: self-checking
//! processes "internally structured around objects called elements that
//! contain their own private data and provide elementary functions or
//! services" (§3.1). This crate provides the generic machinery; the SIFT
//! environment (`ree-sift`) composes concrete ARMORs from it:
//!
//! * [`Element`] — the unit of composition, with private [`Fields`] state
//!   and internal assertions;
//! * [`ArmorProcess`] — the runtime hosting elements on the simulated OS:
//!   event-driven message processing, reliable point-to-point messaging
//!   ([`ReliableComm`]), daemon-gateway routing, and timers;
//! * [`CheckpointBuffer`] — microcheckpointing (§3.4): per-element
//!   regions updated after each event delivery, committed to stable
//!   storage on every message transmission;
//! * heap-injection support: element state is built from corruptible
//!   [`Value`]s, so NFTAPE-style bit flips land in real protocol data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod element;
mod event;
mod microcheckpoint;
mod runtime;
mod value;
mod wire;

pub use comm::{Inbound, ReliableComm};
pub use element::{assertions, Element, ElementClone, ElementOutcome};
pub use event::{ArmorEvent, ArmorId, ArmorMessage, WireKind, WirePacket};
pub use microcheckpoint::CheckpointBuffer;
pub use runtime::{
    valid_ptr, ArmorCore, ArmorOptions, ArmorProcess, ControlOp, ElementCtx, Gateway,
    RestorePolicy, PTR_ALIGN,
};
pub use value::{Fields, Value};
pub use wire::{decode_fields, encode_fields, DecodeError};
