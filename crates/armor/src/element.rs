//! The element abstraction (§3.1).
//!
//! "An ARMOR is a multithreaded process internally structured around
//! objects called elements that contain their own private data and
//! provide elementary functions or services. … Elements subscribe to
//! events that they are designed to process, and an element's state can
//! only be modified while processing message events."
//!
//! Elements keep their private state as [`Fields`] so microcheckpointing,
//! heap injection, and assertions all operate on the same bytes. An
//! element's [`Element::check`] hook implements the paper's internal
//! assertions: "range checks, validity checks on data (e.g., a valid
//! ARMOR ID), and data structure integrity checks" (§3.3).

use crate::event::ArmorEvent;
use crate::runtime::ElementCtx;
use crate::value::Fields;

/// Result of delivering one event to one element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementOutcome {
    /// Event processed; state may have changed (it will be
    /// microcheckpointed).
    Ok,
    /// The element dereferenced garbage or otherwise faulted: the whole
    /// ARMOR process crashes (SIGSEGV-equivalent) *without* acking the
    /// in-flight message.
    Crash(String),
    /// The message-handling thread aborted (Figure 10): the event is
    /// dropped, the message counts as seen, but **no ack is sent**.
    AbortThread(String),
}

/// Object-safe cloning for [`Element`] trait objects (warm-boot
/// snapshot forking clones whole ARMOR processes, elements included).
/// Blanket-implemented for every `Element + Clone` type.
pub trait ElementClone {
    /// Clones the element behind the trait object.
    fn clone_element(&self) -> Box<dyn Element>;
}

impl<T: Element + Clone + 'static> ElementClone for T {
    fn clone_element(&self) -> Box<dyn Element> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Element> {
    fn clone(&self) -> Self {
        (**self).clone_element()
    }
}

/// A pluggable unit of ARMOR functionality.
///
/// `Send + Sync + ElementClone` mirror the bounds on
/// [`ree_os::Process`]: element state must be clonable plain data (or
/// `Arc`-shared immutable data) so a booted ARMOR can be forked.
pub trait Element: ElementClone + Send + Sync {
    /// Stable element name; also names its checkpoint-buffer region and
    /// heap-injection target (Table 8 uses `mgr_armor_info`,
    /// `exec_armor_info`, `app_param`, `mgr_app_detect`, `node_mgmt`).
    fn name(&self) -> &'static str;

    /// Event tags this element processes.
    fn subscriptions(&self) -> &'static [&'static str];

    /// Processes one event, possibly mutating state and emitting actions
    /// through `ctx`.
    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome;

    /// Read access to private state (microcheckpointing, injection).
    fn state(&self) -> &Fields;

    /// Write access to private state (restore, injection).
    fn state_mut(&mut self) -> &mut Fields;

    /// Internal assertions over private state. Returning `Err` makes the
    /// ARMOR kill itself ("in order to limit error propagation, the ARMOR
    /// kills itself when an internal check detects an error", §3.3).
    fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Common assertion helpers used by element implementations.
pub mod assertions {
    use crate::value::{Fields, Value};

    /// Asserts a `U64` field exists and lies within `[lo, hi]`.
    pub fn range_check(fields: &Fields, name: &str, lo: u64, hi: u64) -> Result<(), String> {
        match fields.u64(name) {
            Some(v) if (lo..=hi).contains(&v) => Ok(()),
            Some(v) => Err(format!("{name}={v} outside [{lo},{hi}]")),
            None => Err(format!("{name} missing or mistyped")),
        }
    }

    /// Asserts a stored ARMOR id is plausible: nonzero and below `max`.
    pub fn valid_armor_id(fields: &Fields, name: &str, max: u64) -> Result<(), String> {
        match fields.u64(name) {
            Some(0) => Err(format!("{name} is the null ARMOR id")),
            Some(v) if v < max => Ok(()),
            Some(v) => Err(format!("{name}={v} exceeds ARMOR id space")),
            None => Err(format!("{name} missing or mistyped")),
        }
    }

    /// Structure-integrity check: every value in a map field satisfies
    /// `pred`.
    pub fn map_integrity<F: Fn(&Value) -> bool>(
        fields: &Fields,
        name: &str,
        pred: F,
    ) -> Result<(), String> {
        let Some(Value::Map(map)) = fields.get(name) else {
            return Err(format!("{name} missing or not a map"));
        };
        for (k, v) in map {
            if !pred(v) {
                return Err(format!("{name}[{k}] fails integrity check"));
            }
        }
        Ok(())
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn range_check_accepts_and_rejects() {
            let mut f = Fields::new();
            f.set("n", Value::U64(5));
            assert!(range_check(&f, "n", 0, 10).is_ok());
            assert!(range_check(&f, "n", 6, 10).is_err());
            assert!(range_check(&f, "missing", 0, 10).is_err());
            f.set("s", Value::Str("x".into()));
            assert!(range_check(&f, "s", 0, 10).is_err());
        }

        #[test]
        fn armor_id_validity() {
            let mut f = Fields::new();
            f.set("id", Value::U64(3));
            assert!(valid_armor_id(&f, "id", 1000).is_ok());
            f.set("id", Value::U64(0));
            assert!(valid_armor_id(&f, "id", 1000).is_err());
            f.set("id", Value::U64(99999));
            assert!(valid_armor_id(&f, "id", 1000).is_err());
        }

        #[test]
        fn map_integrity_checks_all_entries() {
            let mut f = Fields::new();
            let mut m = std::collections::BTreeMap::new();
            m.insert("a".into(), Value::U64(1));
            m.insert("b".into(), Value::U64(2));
            f.set("tbl", Value::Map(m));
            assert!(map_integrity(&f, "tbl", |v| v.as_u64().is_some()).is_ok());
            assert!(map_integrity(&f, "tbl", |v| v.as_u64() == Some(1)).is_err());
            assert!(map_integrity(&f, "nope", |_| true).is_err());
        }
    }
}
