//! Dynamic element state: typed values that can be checkpointed,
//! assertion-checked, and bit-flipped.
//!
//! ARMOR elements keep their private state as [`Fields`] — an ordered map
//! of named [`Value`]s. One representation serves three mechanisms that
//! the paper couples tightly:
//!
//! * **microcheckpointing** (§3.4): `Fields` serialise to a compact wire
//!   image copied into the element's checkpoint-buffer region;
//! * **heap injection** (§7): a bit flip lands in a *real leaf value* and
//!   propagates through genuine protocol logic (e.g. a flipped daemon ID
//!   in `node_mgmt` routes a message to daemon 0);
//! * **assertions** (§3.3): range/validity checks run over the same state
//!   the injector corrupts, so detection coverage is meaningful.
//!
//! Pointer-class fields ([`Value::Ptr`]) model structural linkage: the
//! paper found "crash failures were most often caused by segmentation
//! faults raised when a corrupted pointer was dereferenced" (§7.2), so a
//! corrupted `Ptr` crashes the ARMOR the next time the owning element
//! touches its state.

use ree_os::FieldKind;
use ree_sim::SimRng;
use std::collections::BTreeMap;

/// A dynamically typed state value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counters, identifiers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point datum.
    F64(f64),
    /// UTF-8 text (hostnames, executable paths).
    Str(String),
    /// Structural pointer; corruption crashes on next dereference.
    Ptr(u64),
    /// Ordered list.
    List(Vec<Value>),
    /// Named sub-structure.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The paper's pointer/data field classification (§7.2).
    pub fn kind(&self) -> FieldKind {
        match self {
            Value::Ptr(_) => FieldKind::Pointer,
            _ => FieldKind::Data,
        }
    }

    /// Number of leaf values inside this value (1 for scalars).
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::List(items) => items.iter().map(Value::leaf_count).sum(),
            Value::Map(map) => map.values().map(Value::leaf_count).sum(),
            _ => 1,
        }
    }

    /// True if this value contains a pointer leaf misaligned w.r.t.
    /// `align` (recursive, allocation-free).
    pub fn has_misaligned_ptr(&self, align: u64) -> bool {
        match self {
            Value::Ptr(p) => p % align != 0,
            Value::List(items) => items.iter().any(|v| v.has_misaligned_ptr(align)),
            Value::Map(map) => map.values().any(|v| v.has_misaligned_ptr(align)),
            _ => false,
        }
    }

    /// Flips one uniformly chosen bit of this leaf value. For containers
    /// this is a no-op (callers pick leaves via [`Fields::leaf_paths`]).
    pub fn flip_bit(&mut self, rng: &mut SimRng) {
        match self {
            Value::Bool(b) => *b = !*b,
            Value::U64(v) | Value::Ptr(v) => *v ^= 1u64 << rng.below(64),
            Value::I64(v) => *v ^= 1i64 << rng.below(64),
            Value::F64(v) => {
                let bits = v.to_bits() ^ (1u64 << rng.below(64));
                *v = f64::from_bits(bits);
            }
            Value::Str(s) => {
                if s.is_empty() {
                    s.push('\u{1}');
                } else {
                    // Flip a low bit of one byte, re-validating UTF-8 by
                    // replacement so the value stays a legal string while
                    // still being wrong.
                    let mut bytes = s.clone().into_bytes();
                    let i = rng.index(bytes.len());
                    bytes[i] ^= 1 << rng.below(7) as u8;
                    *s = String::from_utf8_lossy(&bytes).into_owned();
                }
            }
            Value::List(_) | Value::Map(_) => {}
        }
    }

    /// Convenience accessor.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// The named state of one element: an ordered map of values.
///
/// # Examples
///
/// ```
/// use ree_armor::{Fields, Value};
/// let mut f = Fields::new();
/// f.set("restart_count", Value::U64(0));
/// assert_eq!(f.get("restart_count").and_then(|v| v.as_u64()), Some(0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fields {
    entries: BTreeMap<String, Value>,
}

impl Fields {
    /// Creates empty state.
    pub fn new() -> Self {
        Fields::default()
    }

    /// Sets (inserting or replacing) a field.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.entries.insert(name.into(), value);
    }

    /// Reads a field.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Mutable field access.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.entries.get_mut(name)
    }

    /// Removes a field.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no fields are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Unsigned-integer field helper.
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(Value::as_u64)
    }

    /// Increments an integer field (creating it at 0), returning the new
    /// value, or `None` if the existing field is not an integer.
    pub fn bump(&mut self, name: &str) -> Option<u64> {
        match self.entries.entry(name.to_owned()).or_insert(Value::U64(0)) {
            Value::U64(v) => {
                *v = v.wrapping_add(1);
                Some(*v)
            }
            _ => None,
        }
    }

    /// Enumerates the paths of all leaf values with their field kinds.
    /// Paths use `/` separators (`table/hostA`, `list/3`).
    ///
    /// Allocates one `String` per leaf — injection/debugging use only;
    /// per-event checks use the allocation-free walkers below.
    pub fn leaf_paths(&self) -> Vec<(String, FieldKind)> {
        let mut out = Vec::new();
        for (name, value) in &self.entries {
            collect_leaves(name, value, &mut out);
        }
        out
    }

    /// Number of leaf values — the allocation-free size used by the wire
    /// model (previously built every path string just to count them).
    pub fn leaf_count(&self) -> usize {
        self.entries.values().map(Value::leaf_count).sum()
    }

    /// True if any pointer-class leaf is misaligned with respect to
    /// `align` — the per-event structural-pointer fault check, walking
    /// the state without building paths.
    pub fn has_misaligned_ptr(&self, align: u64) -> bool {
        self.entries.values().any(|v| v.has_misaligned_ptr(align))
    }

    /// Flips one bit in a leaf selected uniformly among leaves matching
    /// `want` (or all leaves when `want` is `None`). Returns the path and
    /// kind of the leaf hit, or `None` if no matching leaf exists.
    pub fn flip_random_leaf(
        &mut self,
        rng: &mut SimRng,
        want: Option<FieldKind>,
    ) -> Option<(String, FieldKind)> {
        let leaves: Vec<(String, FieldKind)> = self
            .leaf_paths()
            .into_iter()
            .filter(|(_, k)| want.is_none() || want == Some(*k))
            .collect();
        if leaves.is_empty() {
            return None;
        }
        let (path, kind) = leaves[rng.index(leaves.len())].clone();
        let value = self.resolve_mut(&path)?;
        value.flip_bit(rng);
        Some((path, kind))
    }

    /// Resolves a `/`-separated leaf path to its value.
    pub fn resolve(&self, path: &str) -> Option<&Value> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let mut cur = self.entries.get(first)?;
        for part in parts {
            cur = match cur {
                Value::List(items) => items.get(part.parse::<usize>().ok()?)?,
                Value::Map(map) => map.get(part)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Mutable variant of [`Fields::resolve`].
    pub fn resolve_mut(&mut self, path: &str) -> Option<&mut Value> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let mut cur = self.entries.get_mut(first)?;
        for part in parts {
            cur = match cur {
                Value::List(items) => items.get_mut(part.parse::<usize>().ok()?)?,
                Value::Map(map) => map.get_mut(part)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

fn collect_leaves(prefix: &str, value: &Value, out: &mut Vec<(String, FieldKind)>) {
    match value {
        Value::List(items) => {
            for (i, item) in items.iter().enumerate() {
                collect_leaves(&format!("{prefix}/{i}"), item, out);
            }
        }
        Value::Map(map) => {
            for (k, v) in map {
                collect_leaves(&format!("{prefix}/{k}"), v, out);
            }
        }
        _ => out.push((prefix.to_owned(), value.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fields {
        let mut f = Fields::new();
        f.set("count", Value::U64(3));
        f.set("host", Value::Str("nodeA".into()));
        f.set("link", Value::Ptr(0xdead));
        let mut table = BTreeMap::new();
        table.insert("a".to_owned(), Value::U64(1));
        table.insert("b".to_owned(), Value::U64(2));
        f.set("table", Value::Map(table));
        f.set("list", Value::List(vec![Value::F64(1.5), Value::Bool(true)]));
        f
    }

    #[test]
    fn get_set_roundtrip() {
        let f = sample();
        assert_eq!(f.u64("count"), Some(3));
        assert_eq!(f.get("host").unwrap().as_str(), Some("nodeA"));
        assert_eq!(f.resolve("table/b").unwrap().as_u64(), Some(2));
        assert_eq!(f.resolve("list/1").unwrap().as_bool(), Some(true));
        assert!(f.resolve("list/9").is_none());
        assert!(f.resolve("count/x").is_none());
    }

    #[test]
    fn leaf_paths_enumerate_nested_leaves_with_kinds() {
        let f = sample();
        let leaves = f.leaf_paths();
        assert_eq!(leaves.len(), 7);
        let ptr_leaves: Vec<_> = leaves.iter().filter(|(_, k)| *k == FieldKind::Pointer).collect();
        assert_eq!(ptr_leaves.len(), 1);
        assert_eq!(ptr_leaves[0].0, "link");
    }

    #[test]
    fn flip_data_leaf_changes_state() {
        let mut f = sample();
        let before = f.clone();
        let mut rng = SimRng::new(1);
        let (path, kind) = f.flip_random_leaf(&mut rng, Some(FieldKind::Data)).unwrap();
        assert_eq!(kind, FieldKind::Data);
        assert_ne!(path, "link");
        assert_ne!(f, before, "a data flip must alter some leaf");
    }

    #[test]
    fn flip_pointer_leaf_targets_ptr() {
        let mut f = sample();
        let mut rng = SimRng::new(2);
        let (path, kind) = f.flip_random_leaf(&mut rng, Some(FieldKind::Pointer)).unwrap();
        assert_eq!(kind, FieldKind::Pointer);
        assert_eq!(path, "link");
        assert_ne!(f.resolve("link").unwrap().as_u64(), Some(0xdead));
    }

    #[test]
    fn flip_on_empty_target_returns_none() {
        let mut f = Fields::new();
        f.set("x", Value::U64(1));
        let mut rng = SimRng::new(3);
        assert!(f.flip_random_leaf(&mut rng, Some(FieldKind::Pointer)).is_none());
    }

    #[test]
    fn bump_counts() {
        let mut f = Fields::new();
        assert_eq!(f.bump("n"), Some(1));
        assert_eq!(f.bump("n"), Some(2));
        f.set("s", Value::Str("x".into()));
        assert_eq!(f.bump("s"), None);
    }

    #[test]
    fn f64_bit_flip_changes_bits() {
        let mut v = Value::F64(1.0);
        let mut rng = SimRng::new(4);
        let before = match v {
            Value::F64(x) => x.to_bits(),
            _ => unreachable!(),
        };
        v.flip_bit(&mut rng);
        let after = match v {
            Value::F64(x) => x.to_bits(),
            _ => unreachable!(),
        };
        assert_eq!((before ^ after).count_ones(), 1);
    }

    #[test]
    fn str_flip_keeps_valid_utf8() {
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            let mut v = Value::Str("hostname-17".into());
            v.flip_bit(&mut rng);
            if let Value::Str(s) = &v {
                assert!(std::str::from_utf8(s.as_bytes()).is_ok());
            }
        }
    }

    #[test]
    fn ptr_is_pointer_kind_everything_else_data() {
        assert_eq!(Value::Ptr(0).kind(), FieldKind::Pointer);
        assert_eq!(Value::U64(0).kind(), FieldKind::Data);
        assert_eq!(Value::Str(String::new()).kind(), FieldKind::Data);
    }
}
