//! The ARMOR runtime: an [`ree_os::Process`] hosting a set of elements
//! with reliable messaging, microcheckpointing, assertions, and recovery.
//!
//! One runtime serves every ARMOR kind in the SIFT environment — FTM,
//! daemons, Heartbeat ARMOR, Execution ARMORs — differing only in their
//! element composition ("this modular, event-driven architecture permits
//! the ARMOR's functionality and fault tolerance services to be customized
//! by choosing the particular set of elements", §3.1) and in their
//! gateway/restore configuration.

use crate::comm::{Inbound, ReliableComm};
use crate::element::{Element, ElementOutcome};
use crate::event::{ArmorEvent, ArmorId, WirePacket};
use crate::microcheckpoint::CheckpointBuffer;
use crate::value::{Fields, Value};
use ree_os::{
    FieldKind, HeapHit, HeapModel, HeapTarget, Message, Pid, ProcCtx, Process, Signal, TraceDetail,
};
use ree_sim::{SimDuration, SimRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Page alignment that "valid" structural pointers satisfy; a bit-flipped
/// pointer is almost always misaligned and crashes on first dereference.
pub const PTR_ALIGN: u64 = 4096;

/// Creates a valid structural pointer value for element state.
pub fn valid_ptr(slot: u64) -> Value {
    Value::Ptr(slot * PTR_ALIGN)
}

fn fields_have_ptr_fault(fields: &Fields) -> bool {
    // Runs on every inbound event (message payload + each subscribed
    // element's state), so it must not allocate: walk the values
    // directly instead of materialising leaf paths.
    fields.has_misaligned_ptr(PTR_ALIGN)
}

/// When a recovered ARMOR restores its state from the checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestorePolicy {
    /// Restore autonomously during startup (daemon-driven recovery of
    /// subordinate ARMORs).
    OnStart,
    /// Wait for an explicit `__restore-state` instruction — the
    /// Heartbeat-ARMOR-driven two-step FTM recovery of §6.1, whose
    /// missing second step leaves the FTM unrecovered under receive
    /// omissions.
    OnInstruction,
}

/// How outbound wire packets leave this ARMOR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gateway {
    /// Send everything to the local daemon process for routing (normal
    /// ARMORs; "daemons are the gateways for ARMOR-to-ARMOR
    /// communication", §3.1).
    Daemon(Pid),
    /// Route directly from an internal table (the daemon ARMOR itself).
    SelfRouting,
}

/// Tunable runtime options.
#[derive(Clone, Debug)]
pub struct ArmorOptions {
    /// Restore policy after recovery.
    pub restore: RestorePolicy,
    /// Run assertions *before* delivering each event (the paper's §11
    /// suggested preemptive checking — an ablation knob; the evaluated
    /// system checks after).
    pub precheck_assertions: bool,
    /// Comm retransmission tick period.
    pub tick_period: SimDuration,
    /// Retransmit unacked messages after this long.
    pub retransmit_after: SimDuration,
    /// Delay between process start and readiness (checkpoint restore,
    /// element wiring) — part of the ~0.5 s recovery time.
    pub ready_delay: SimDuration,
}

impl Default for ArmorOptions {
    fn default() -> Self {
        ArmorOptions {
            restore: RestorePolicy::OnStart,
            precheck_assertions: false,
            tick_period: SimDuration::from_millis(500),
            retransmit_after: SimDuration::from_secs(2),
            ready_delay: SimDuration::from_millis(200),
        }
    }
}

const TIMER_TICK: u64 = 0;
const TIMER_READY: u64 = 1;
const TIMER_RESTORE_FALLBACK: u64 = 2;
const TIMER_USER_BASE: u64 = 3;

/// Result of processing a batch of events.
enum Processing {
    Completed,
    Crash(String),
    AbortThread(String),
    Assertion(String),
}

/// Everything in the ARMOR other than the elements themselves (split so
/// an element and the core can be borrowed simultaneously).
#[derive(Clone)]
pub struct ArmorCore {
    id: ArmorId,
    name: Arc<str>,
    comm: ReliableComm,
    ckpt: CheckpointBuffer,
    opts: ArmorOptions,
    gateway: Gateway,
    /// ARMOR-id → pid routes, sorted by id. A self-routing process knows
    /// a handful of peers, so a sorted small vec (binary search) beats a
    /// `HashMap` — transmit is on the per-message hot path.
    route_table: Vec<(ArmorId, Pid)>,
    raised: Vec<ArmorEvent>,
    poison_next_send: bool,
    /// Pending timer-raised events, sorted by tag (tags are allocated
    /// monotonically, so insertion is a push).
    timer_events: Vec<(u64, ArmorEvent)>,
    next_timer_tag: u64,
    ckpt_key: String,
}

impl ArmorCore {
    /// This ARMOR's identity.
    pub fn id(&self) -> ArmorId {
        self.id
    }

    /// This ARMOR's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn transmit(&mut self, packet: WirePacket, os: &mut ProcCtx<'_>) {
        let size = packet.wire_size();
        match self.gateway {
            Gateway::Daemon(daemon) => {
                os.send(daemon, "armor-wire", size, packet);
            }
            Gateway::SelfRouting => {
                let dst = packet.destination();
                match self.route(dst) {
                    Some(pid) => {
                        os.send(pid, "armor-wire", size, packet);
                    }
                    None => {
                        os.trace(TraceDetail::RouteMiss { armor: dst.0 });
                    }
                }
            }
        }
    }

    /// One-shot outgoing-message corruption: a silently corrupted ARMOR
    /// poisons the next message it builds (§6.1: corrupted termination
    /// notifications / heartbeat messages crash their receiver). The
    /// poison rides the message — a *reliable* poisoned message is
    /// retransmitted verbatim, re-crashing the receiver in a loop; an
    /// *unreliable* one strikes once.
    fn apply_transient_poison(&mut self, events: &mut [ArmorEvent]) {
        if self.poison_next_send {
            self.poison_next_send = false;
            if let Some(first) = events.first_mut() {
                first.fields.set("__hdr", Value::Ptr(PTR_ALIGN + 1));
            }
        }
    }

    fn commit_checkpoint(&mut self, os: &mut ProcCtx<'_>) {
        let image = self.ckpt.encode();
        let key = self.ckpt_key.clone();
        if os.ramdisk().write(&key, image).is_err() {
            os.trace("checkpoint commit failed: ram disk full");
        }
    }

    /// Looks up the pid routed for `id` (binary search, no hashing).
    fn route(&self, id: ArmorId) -> Option<Pid> {
        self.route_table.binary_search_by_key(&id, |(a, _)| *a).ok().map(|i| self.route_table[i].1)
    }

    /// Installs (or replaces) a route.
    fn install_route(&mut self, id: ArmorId, pid: Pid) {
        match self.route_table.binary_search_by_key(&id, |(a, _)| *a) {
            Ok(i) => self.route_table[i].1 = pid,
            Err(i) => self.route_table.insert(i, (id, pid)),
        }
    }
}

/// Per-event context handed to elements.
pub struct ElementCtx<'a, 'b> {
    core: &'a mut ArmorCore,
    /// Raw OS access (spawning application processes, killing hung
    /// processes, storage, traces). Elements use this sparingly.
    pub os: &'a mut ProcCtx<'b>,
}

impl ElementCtx<'_, '_> {
    /// This ARMOR's identity.
    pub fn armor_id(&self) -> ArmorId {
        self.core.id
    }

    /// This ARMOR's instance name.
    pub fn armor_name(&self) -> String {
        self.core.name.to_string()
    }

    /// Current virtual time.
    pub fn now(&self) -> ree_sim::SimTime {
        self.os.now()
    }

    /// Sends events to another ARMOR reliably. Each transmission commits
    /// the checkpoint buffer to stable storage (§3.4).
    pub fn send(&mut self, dst: ArmorId, mut events: Vec<ArmorEvent>) {
        self.core.apply_transient_poison(&mut events);
        let now = self.os.now();
        let packet = self.core.comm.send(now, dst, events);
        self.core.transmit(packet, self.os);
        self.core.commit_checkpoint(self.os);
    }

    /// Sends events fire-and-forget (heartbeat pings and replies): no
    /// retransmission, no delivery guarantee.
    pub fn send_unreliable(&mut self, dst: ArmorId, mut events: Vec<ArmorEvent>) {
        self.core.apply_transient_poison(&mut events);
        let packet = self.core.comm.send_unreliable(dst, events);
        self.core.transmit(packet, self.os);
        self.core.commit_checkpoint(self.os);
    }

    /// Raises an event for local elements, processed after the current
    /// event within the same message context.
    pub fn raise(&mut self, ev: ArmorEvent) {
        self.core.raised.push(ev);
    }

    /// Schedules an event to be raised locally after `delay`.
    pub fn set_timer_event(&mut self, delay: SimDuration, ev: ArmorEvent) {
        let tag = self.core.next_timer_tag;
        self.core.next_timer_tag += 1;
        // Tags are allocated monotonically, so pushing keeps the vec
        // sorted for the binary-search removal in `on_timer`.
        debug_assert!(self.core.timer_events.last().is_none_or(|(t, _)| *t < tag));
        self.core.timer_events.push((tag, ev));
        self.os.set_timer(delay, tag);
    }

    /// Installs a route (daemons and installers).
    pub fn install_route(&mut self, id: ArmorId, pid: Pid) {
        self.core.install_route(id, pid);
    }

    /// Looks up a route.
    pub fn route(&self, id: ArmorId) -> Option<Pid> {
        self.core.route(id)
    }

    /// All currently known routes, sorted by ARMOR id (the table's
    /// natural order).
    pub fn routes(&self) -> Vec<(ArmorId, Pid)> {
        self.core.route_table.clone()
    }

    /// Appends to the cluster trace.
    pub fn trace(&mut self, detail: impl Into<TraceDetail>) {
        self.os.trace(detail);
    }

    /// Appends to the cluster trace with a typed event for O(1)
    /// classification queries.
    pub fn trace_event(&mut self, event: ree_os::TraceEvent, detail: impl Into<TraceDetail>) {
        self.os.trace_event(event, detail);
    }
}

/// The ARMOR process: element container + runtime services.
#[derive(Clone)]
pub struct ArmorProcess {
    core: ArmorCore,
    elements: Vec<Option<Box<dyn Element>>>,
    ready: bool,
    /// For [`RestorePolicy::OnInstruction`]: protocol traffic is held
    /// until the restore instruction arrives — a cold process must not
    /// acknowledge (and thereby consume) messages its restored self
    /// needs (§6.1 two-step recovery).
    awaiting_restore: bool,
    buffered: VecDeque<(Pid, WirePacket)>,
    restored_from_checkpoint: bool,
}

impl ArmorProcess {
    /// Builds an ARMOR from its element composition.
    pub fn new(
        id: ArmorId,
        name: impl Into<String>,
        elements: Vec<Box<dyn Element>>,
        gateway: Gateway,
        opts: ArmorOptions,
    ) -> Self {
        let name: Arc<str> = name.into().into();
        let ckpt = CheckpointBuffer::new(elements.iter().map(|e| (e.name(), e.state())));
        ArmorProcess {
            core: ArmorCore {
                id,
                comm: ReliableComm::new(id, opts.retransmit_after),
                ckpt,
                gateway,
                route_table: Vec::new(),
                raised: Vec::new(),
                poison_next_send: false,
                timer_events: Vec::new(),
                next_timer_tag: TIMER_USER_BASE,
                ckpt_key: format!("ckpt/{name}"),
                name,
                opts,
            },
            elements: elements.into_iter().map(Some).collect(),
            ready: false,
            awaiting_restore: false,
            buffered: VecDeque::new(),
            restored_from_checkpoint: false,
        }
    }

    /// This ARMOR's identity.
    pub fn id(&self) -> ArmorId {
        self.core.id
    }

    /// Checkpoint-buffer statistics `(updates, commits)`.
    pub fn checkpoint_stats(&self) -> (u64, u64) {
        (self.core.ckpt.updates(), self.core.ckpt.commits())
    }

    /// True if the last start restored state from a checkpoint.
    pub fn restored_from_checkpoint(&self) -> bool {
        self.restored_from_checkpoint
    }

    fn try_restore(&mut self, ctx: &mut ProcCtx<'_>) {
        let key = self.core.ckpt_key.clone();
        let image = match ctx.ramdisk().read(&key) {
            Some(bytes) => bytes.to_vec(),
            None => return,
        };
        match CheckpointBuffer::decode(&image) {
            Ok(states) => {
                for (name, fields) in states {
                    for slot in self.elements.iter_mut().flatten() {
                        if slot.name() == name {
                            *slot.state_mut() = fields.clone();
                            self.core.ckpt.update(&name, &fields);
                        }
                    }
                }
                self.restored_from_checkpoint = true;
                ctx.trace(TraceDetail::CheckpointRestored { name: Arc::clone(&self.core.name) });
            }
            Err(e) => {
                ctx.trace_recovery(TraceDetail::CheckpointUnusable {
                    name: Arc::clone(&self.core.name),
                    error: e.to_string().into(),
                });
            }
        }
    }

    fn process_events(&mut self, events: Vec<ArmorEvent>, ctx: &mut ProcCtx<'_>) -> Processing {
        let mut queue: VecDeque<ArmorEvent> = events.into();
        while let Some(ev) = queue.pop_front() {
            // Runtime-reserved events.
            if ev.tag == "__restore-state" {
                self.try_restore(ctx);
                self.awaiting_restore = false;
                if self.restored_from_checkpoint {
                    ctx.trace_recovery_event(
                        ree_os::TraceEvent::RecoveryCompleted,
                        TraceDetail::Recovered { name: Arc::clone(&self.core.name) },
                    );
                    // Let elements re-derive in-flight intentions (timers
                    // died with the previous incarnation).
                    queue.push_back(ArmorEvent::new("armor-restored"));
                }
                continue;
            }
            // A poisoned pointer in the message payload crashes the
            // receiver as it unmarshals (§6.1 propagation).
            if fields_have_ptr_fault(&ev.fields) {
                return Processing::Crash("dereferenced corrupted pointer in message".into());
            }
            for i in 0..self.elements.len() {
                let subscribed = match &self.elements[i] {
                    Some(e) => e.subscriptions().contains(&ev.tag),
                    None => false,
                };
                if !subscribed {
                    continue;
                }
                let mut elem = self.elements[i].take().expect("element present");
                // Touching state with a corrupted structural pointer
                // segfaults before any logic runs.
                if fields_have_ptr_fault(elem.state()) {
                    self.elements[i] = Some(elem);
                    return Processing::Crash("dereferenced corrupted element pointer".into());
                }
                if self.core.opts.precheck_assertions {
                    if let Err(e) = elem.check() {
                        self.elements[i] = Some(elem);
                        return Processing::Assertion(format!("precheck: {e}"));
                    }
                }
                let outcome = {
                    let mut ectx = ElementCtx { core: &mut self.core, os: ctx };
                    elem.handle(&ev, &mut ectx)
                };
                match outcome {
                    ElementOutcome::Ok => {
                        // Assertion check *before* the microcheckpoint so
                        // detected corruption never reaches the buffer
                        // (Table 9 scenario 3).
                        if let Err(e) = elem.check() {
                            self.elements[i] = Some(elem);
                            return Processing::Assertion(e);
                        }
                        self.core.ckpt.update(elem.name(), elem.state());
                        self.elements[i] = Some(elem);
                    }
                    ElementOutcome::Crash(r) => {
                        self.elements[i] = Some(elem);
                        return Processing::Crash(r);
                    }
                    ElementOutcome::AbortThread(r) => {
                        self.elements[i] = Some(elem);
                        return Processing::AbortThread(r);
                    }
                }
            }
            // Events raised by elements run after the current one.
            for raised in self.core.raised.drain(..) {
                queue.push_back(raised);
            }
        }
        Processing::Completed
    }

    fn finish_local(&mut self, result: Processing, ctx: &mut ProcCtx<'_>) {
        match result {
            Processing::Completed => {}
            Processing::Crash(r) => {
                ctx.trace(TraceDetail::ArmorCrash {
                    name: Arc::clone(&self.core.name),
                    reason: r.into(),
                });
                ctx.crash(Signal::Segv);
            }
            Processing::Assertion(e) => {
                ctx.trace_event(
                    ree_os::TraceEvent::AssertionFired,
                    TraceDetail::ArmorAssertion {
                        name: Arc::clone(&self.core.name),
                        reason: e.clone().into(),
                    },
                );
                ctx.abort(e);
            }
            Processing::AbortThread(r) => {
                ctx.trace(TraceDetail::ThreadAborted {
                    name: Arc::clone(&self.core.name),
                    reason: r.into(),
                });
            }
        }
    }

    fn handle_wire(&mut self, from: Pid, packet: WirePacket, ctx: &mut ProcCtx<'_>) {
        let _ = from;
        if packet.destination() != self.core.id {
            // Routing duty (daemon ARMORs only).
            if self.core.gateway == Gateway::SelfRouting {
                self.core.transmit(packet, ctx);
            } else {
                ctx.trace(TraceDetail::Misrouted { name: Arc::clone(&self.core.name) });
            }
            return;
        }
        match self.core.comm.on_packet(packet) {
            Inbound::Deliver(msg) => {
                let events = msg.events.clone();
                match self.process_events(events, ctx) {
                    Processing::Completed => {
                        let ack = self.core.comm.acknowledge(&msg);
                        self.core.transmit(ack, ctx);
                        // Every transmission commits the checkpoint.
                        self.core.commit_checkpoint(ctx);
                    }
                    Processing::AbortThread(r) => {
                        // Seen but unacked: the Figure 10 mechanism.
                        self.core.comm.mark_seen_unacked(&msg);
                        ctx.trace(TraceDetail::ThreadAbort {
                            name: Arc::clone(&self.core.name),
                            reason: r.into(),
                        });
                    }
                    Processing::Crash(r) => {
                        ctx.trace(TraceDetail::ArmorCrash {
                            name: Arc::clone(&self.core.name),
                            reason: r.into(),
                        });
                        ctx.crash(Signal::Segv);
                    }
                    Processing::Assertion(e) => {
                        ctx.trace_event(
                            ree_os::TraceEvent::AssertionFired,
                            TraceDetail::ArmorAssertion {
                                name: Arc::clone(&self.core.name),
                                reason: e.clone().into(),
                            },
                        );
                        ctx.abort(e);
                    }
                }
            }
            Inbound::DuplicateReAck(ack) => {
                self.core.transmit(ack, ctx);
            }
            Inbound::AckConsumed | Inbound::AckIgnored => {}
        }
    }
}

/// Control operations outside the ARMOR reliable-messaging plane (used
/// by the trusted SCC and by the SIFT application interface).
#[derive(Debug, Clone)]
pub enum ControlOp {
    /// Adds a routing entry.
    AddRoute(ArmorId, Pid),
    /// Raises a local event (e.g. progress indicators from the SIFT
    /// client library, install instructions from the SCC).
    Raise(ArmorEvent),
}

impl Process for ArmorProcess {
    fn kind(&self) -> &'static str {
        "armor"
    }

    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        // Fresh incarnations must use fresh sequence numbers (peers'
        // dedup sets survived our predecessor's crash).
        self.core.comm.rebase(ctx.pid().0.wrapping_mul(1_000_000));
        match self.core.opts.restore {
            RestorePolicy::OnStart => {
                self.try_restore(ctx);
            }
            RestorePolicy::OnInstruction => {
                // Hold protocol traffic until the recovery coordinator
                // instructs the restore — but only if a checkpoint
                // actually exists (a first install proceeds cold).
                let key = self.core.ckpt_key.clone();
                if ctx.ramdisk().exists(&key) {
                    self.awaiting_restore = true;
                    // Safety valve: if the coordinator never follows up
                    // (e.g. it is failing too), proceed cold rather than
                    // deadlock.
                    ctx.set_timer(SimDuration::from_secs(30), TIMER_RESTORE_FALLBACK);
                }
            }
        }
        ctx.set_timer(self.core.opts.tick_period, TIMER_TICK);
        ctx.set_timer(self.core.opts.ready_delay, TIMER_READY);
    }

    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        match msg.label {
            "armor-wire" => {
                let from = msg.from;
                match msg.take::<WirePacket>() {
                    Ok(packet) => {
                        let restore_instruction = matches!(
                            &packet,
                            WirePacket::Data(m)
                                if m.events.iter().any(|e| e.tag == "__restore-state")
                        );
                        if self.ready && (!self.awaiting_restore || restore_instruction) {
                            self.handle_wire(from, packet, ctx);
                            if restore_instruction && !self.awaiting_restore {
                                while let Some((f, p)) = self.buffered.pop_front() {
                                    self.handle_wire(f, p, ctx);
                                }
                            }
                        } else {
                            self.buffered.push_back((from, packet));
                        }
                    }
                    Err(_) => ctx.trace("malformed armor-wire payload"),
                }
            }
            "armor-control" => match msg.take::<ControlOp>() {
                Ok(ControlOp::AddRoute(id, pid)) => {
                    self.core.install_route(id, pid);
                }
                Ok(ControlOp::Raise(ev)) => {
                    let result = self.process_events(vec![ev], ctx);
                    self.finish_local(result, ctx);
                }
                Err(_) => ctx.trace("malformed armor-control payload"),
            },
            other => {
                ctx.trace(TraceDetail::UnknownLabel {
                    name: Arc::clone(&self.core.name),
                    label: other,
                });
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        match tag {
            TIMER_TICK => {
                let now = ctx.now();
                for packet in self.core.comm.tick(now) {
                    self.core.transmit(packet, ctx);
                }
                ctx.set_timer(self.core.opts.tick_period, TIMER_TICK);
            }
            TIMER_RESTORE_FALLBACK => {
                if self.awaiting_restore {
                    ctx.trace(TraceDetail::NoRestoreInstruction {
                        name: Arc::clone(&self.core.name),
                    });
                    self.try_restore(ctx);
                    self.awaiting_restore = false;
                    let result = self.process_events(vec![ArmorEvent::new("armor-restored")], ctx);
                    self.finish_local(result, ctx);
                    while let Some((from, packet)) = self.buffered.pop_front() {
                        self.handle_wire(from, packet, ctx);
                    }
                }
            }
            TIMER_READY => {
                self.ready = true;
                // Elements learn they are live via the armor-start event;
                // recovered ARMORs additionally get armor-restored so
                // they can re-derive in-flight intentions.
                let mut events = vec![ArmorEvent::new("armor-start")];
                if self.restored_from_checkpoint {
                    ctx.trace_recovery_event(
                        ree_os::TraceEvent::RecoveryCompleted,
                        TraceDetail::Recovered { name: Arc::clone(&self.core.name) },
                    );
                    events.push(ArmorEvent::new("armor-restored"));
                }
                let result = self.process_events(events, ctx);
                self.finish_local(result, ctx);
                while let Some((from, packet)) = self.buffered.pop_front() {
                    self.handle_wire(from, packet, ctx);
                }
            }
            user => {
                let fired = self
                    .core
                    .timer_events
                    .binary_search_by_key(&user, |(t, _)| *t)
                    .ok()
                    .map(|i| self.core.timer_events.remove(i).1);
                if let Some(ev) = fired {
                    let result = self.process_events(vec![ev], ctx);
                    self.finish_local(result, ctx);
                }
            }
        }
    }

    fn on_child_exit(&mut self, child: Pid, status: ree_os::ExitStatus, ctx: &mut ProcCtx<'_>) {
        // waitpid-based crash detection (§3.2/§3.3): surface as an event.
        let ev = ArmorEvent::new("os-child-exit")
            .with("child", Value::U64(child.0))
            .with("abnormal", Value::Bool(status.is_abnormal()))
            .with("status", Value::Str(status.to_string()));
        let result = self.process_events(vec![ev], ctx);
        self.finish_local(result, ctx);
    }

    fn heap(&mut self) -> Option<&mut dyn HeapModel> {
        Some(self)
    }

    fn silent_corruption(&mut self, rng: &mut SimRng) {
        // 60%: persistent bit flip in some element's state; 40%: one-shot
        // corruption of the next outgoing message (§6.1 scenarios).
        if rng.chance(0.6) {
            let _ = HeapModel::flip_bit(self, rng, &HeapTarget::Any);
        } else {
            self.core.poison_next_send = true;
        }
    }
}

impl ArmorProcess {
    /// Testing/experiment hook: force the next outgoing message to carry
    /// corrupted header data.
    pub fn poison_next_send(&mut self) {
        self.core.poison_next_send = true;
    }
}

impl HeapModel for ArmorProcess {
    fn region_names(&self) -> Vec<String> {
        self.elements.iter().flatten().map(|e| e.name().to_owned()).collect()
    }

    fn flip_bit(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit> {
        let want = match target {
            HeapTarget::Any => None,
            HeapTarget::DataOnly | HeapTarget::Region(_) => Some(FieldKind::Data),
        };
        let region_filter: Option<&str> = match target {
            HeapTarget::Region(name) => Some(name.as_str()),
            _ => None,
        };
        // Collect candidate element indices (with at least one matching leaf).
        let mut candidates = Vec::new();
        for (i, slot) in self.elements.iter().enumerate() {
            let Some(elem) = slot else { continue };
            if let Some(filter) = region_filter {
                if elem.name() != filter {
                    continue;
                }
            }
            let has_leaf =
                elem.state().leaf_paths().iter().any(|(_, k)| want.is_none() || want == Some(*k));
            if has_leaf {
                candidates.push(i);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let i = candidates[rng.index(candidates.len())];
        let elem = self.elements[i].as_mut().expect("candidate present");
        let (path, kind) = elem.state_mut().flip_random_leaf(rng, want)?;
        Some(HeapHit { region: elem.name().to_owned(), field: path, kind })
    }
}

impl std::fmt::Debug for ArmorProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArmorProcess")
            .field("id", &self.core.id)
            .field("name", &self.core.name)
            .field("elements", &self.elements.len())
            .field("ready", &self.ready)
            .finish()
    }
}
