//! Microcheckpointing (§3.4, Figure 4, and \[36\]).
//!
//! "Microcheckpointing leverages the modular element composition of the
//! ARMOR process to incrementally checkpoint state on an
//! element-by-element basis. After each event delivery, the state of the
//! affected element is copied to a checkpoint buffer within the ARMOR
//! process. Each element is assigned a disjoint region within the
//! checkpoint buffer. … When the ARMOR decides to make the checkpoint
//! permanent, it copies the checkpoint buffer to stable storage."
//!
//! Two properties matter for the paper's results and are enforced here:
//!
//! 1. **Only the element that processed the event is snapshotted.**
//!    Incidental corruption of *other* elements is not captured, so a
//!    clean copy survives in the buffer — why assertions + rollback
//!    prevented 58% of would-be system failures (Table 9).
//! 2. **Commit happens on every message transmission**, keeping the
//!    global checkpoint set consistent so a single process rolls back.

use crate::wire::{decode_fields, encode_fields_into, DecodeError};
use crate::Fields;
use bytes::{Buf, Bytes, BytesMut};

/// The in-process checkpoint buffer: one disjoint region per element,
/// with an **incrementally maintained** stable-storage image.
///
/// Two commit-path costs used to scale with total state size on every
/// reliable ARMOR send: re-encoding the touched element and rebuilding
/// the whole stable-storage image. Both are now incremental:
///
/// * [`CheckpointBuffer::update`] encodes into a reusable scratch buffer
///   and, when the encoded bytes equal the region's current image (the
///   element processed an event without changing state), skips the copy
///   and leaves the region clean.
/// * [`CheckpointBuffer::encode`] keeps the assembled image from the
///   previous commit and patches only dirty regions in place. Region
///   offsets are stable because regions are disjoint and fixed at
///   construction; only a region changing *length* forces a full
///   rebuild (which also refreshes every offset).
///
/// Regions are addressed by construction-order index through a sorted
/// name→index table, replacing the linear `String` compare per event.
#[derive(Debug, Clone, Default)]
pub struct CheckpointBuffer {
    regions: Vec<Region>,
    /// Sorted `(element name, region index)` lookup table.
    by_name: Vec<(String, u32)>,
    /// The assembled stable-storage image as of the last commit
    /// (empty until the first commit).
    assembled: Vec<u8>,
    /// True when a region's image changed length since the last commit,
    /// invalidating every cached offset.
    needs_rebuild: bool,
    /// Reusable per-update encode scratch.
    scratch: BytesMut,
    updates: u64,
    clean_updates: u64,
    commits: u64,
    patched_commits: u64,
}

#[derive(Debug, Clone, Default)]
struct Region {
    element: String,
    image: Vec<u8>,
    /// Byte offset of `image` within `assembled` (valid while
    /// `needs_rebuild` is false and `assembled` is non-empty).
    offset: usize,
    /// Image changed since the last commit.
    dirty: bool,
}

impl CheckpointBuffer {
    /// Creates a buffer with one region per element name, seeded from the
    /// provided initial states.
    pub fn new<'a>(elements: impl IntoIterator<Item = (&'a str, &'a Fields)>) -> Self {
        let mut scratch = BytesMut::with_capacity(256);
        let regions: Vec<Region> = elements
            .into_iter()
            .map(|(name, state)| {
                scratch.clear();
                encode_fields_into(state, &mut scratch);
                Region { element: name.to_owned(), image: scratch.to_vec(), offset: 0, dirty: true }
            })
            .collect();
        let mut by_name: Vec<(String, u32)> =
            regions.iter().enumerate().map(|(i, r)| (r.element.clone(), i as u32)).collect();
        // Duplicate names keep construction order within the sorted
        // table, so the *first* constructed region wins lookups —
        // matching the old linear scan's semantics.
        by_name.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        by_name.dedup_by(|later, first| later.0 == first.0);
        CheckpointBuffer {
            regions,
            by_name,
            assembled: Vec::new(),
            needs_rebuild: true,
            scratch,
            updates: 0,
            clean_updates: 0,
            commits: 0,
            patched_commits: 0,
        }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Looks up a region by element name (sorted table, no linear
    /// `String` scan).
    fn region_index(&self, element: &str) -> Option<usize> {
        self.by_name
            .binary_search_by(|(name, _)| name.as_str().cmp(element))
            .ok()
            .map(|i| self.by_name[i].1 as usize)
    }

    /// Copies `state` into the region of `element` — the per-event
    /// microcheckpoint step. Returns `false` if the element is unknown.
    ///
    /// Re-encoding into a reusable scratch buffer, the update is a no-op
    /// (region stays clean for the next commit) when the encoded image
    /// is byte-identical to the region's current one.
    pub fn update(&mut self, element: &str, state: &Fields) -> bool {
        let Some(i) = self.region_index(element) else { return false };
        self.updates += 1;
        self.scratch.clear();
        encode_fields_into(state, &mut self.scratch);
        let region = &mut self.regions[i];
        if region.image.as_slice() == &self.scratch[..] {
            self.clean_updates += 1;
            return true;
        }
        if region.image.len() != self.scratch.len() {
            self.needs_rebuild = true;
        }
        region.image.clear();
        region.image.extend_from_slice(&self.scratch);
        region.dirty = true;
        true
    }

    /// The current image of one region (for tests/inspection).
    pub fn region_image(&self, element: &str) -> Option<&[u8]> {
        self.region_index(element).map(|i| self.regions[i].image.as_slice())
    }

    /// Serialises the whole buffer into a stable-storage image.
    ///
    /// Incremental: the image assembled at the previous commit is kept,
    /// and only regions whose state changed since then are re-written
    /// into their (stable) spans. A region that changed length triggers
    /// a full rebuild.
    pub fn encode(&mut self) -> Vec<u8> {
        self.commits += 1;
        if self.needs_rebuild || self.assembled.is_empty() {
            self.rebuild_assembled();
        } else {
            self.patched_commits += 1;
            for region in &mut self.regions {
                if region.dirty {
                    self.assembled[region.offset..region.offset + region.image.len()]
                        .copy_from_slice(&region.image);
                    region.dirty = false;
                }
            }
        }
        self.assembled.clone()
    }

    /// Rebuilds the assembled image from scratch, refreshing every
    /// region's cached offset.
    fn rebuild_assembled(&mut self) {
        let total: usize =
            4 + self.regions.iter().map(|r| 8 + r.element.len() + r.image.len()).sum::<usize>();
        let mut buf = std::mem::take(&mut self.assembled);
        buf.clear();
        buf.reserve(total);
        buf.extend_from_slice(&(self.regions.len() as u32).to_be_bytes());
        for region in &mut self.regions {
            buf.extend_from_slice(&(region.element.len() as u32).to_be_bytes());
            buf.extend_from_slice(region.element.as_bytes());
            buf.extend_from_slice(&(region.image.len() as u32).to_be_bytes());
            region.offset = buf.len();
            buf.extend_from_slice(&region.image);
            region.dirty = false;
        }
        self.assembled = buf;
        self.needs_rebuild = false;
    }

    /// Decodes a stable-storage image into `(element, state)` pairs.
    ///
    /// # Errors
    ///
    /// Fails on truncated or structurally invalid images — the caller
    /// treats this as "no usable checkpoint" and cold-starts.
    pub fn decode(image: &[u8]) -> Result<Vec<(String, Fields)>, DecodeError> {
        let mut buf = Bytes::copy_from_slice(image);
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = buf.get_u32() as usize;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let name_len = buf.get_u32() as usize;
            if buf.remaining() < name_len {
                return Err(DecodeError::Truncated);
            }
            let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
                .map_err(|_| DecodeError::BadUtf8)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let img_len = buf.get_u32() as usize;
            if buf.remaining() < img_len {
                return Err(DecodeError::Truncated);
            }
            let img = buf.copy_to_bytes(img_len);
            let fields = decode_fields(&img)?;
            out.push((name, fields));
        }
        Ok(out)
    }

    /// Count of per-event region updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Count of updates whose encoded image was unchanged (no copy, no
    /// dirty mark).
    pub fn clean_updates(&self) -> u64 {
        self.clean_updates
    }

    /// Count of stable-storage commits.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Count of commits served by patching dirty spans of the cached
    /// image instead of rebuilding it.
    pub fn patched_commits(&self) -> u64 {
        self.patched_commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn fields(n: u64) -> Fields {
        let mut f = Fields::new();
        f.set("v", Value::U64(n));
        f
    }

    #[test]
    fn update_touches_only_named_region() {
        let a = fields(1);
        let b = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b)]);
        let b_before = buf.region_image("b").unwrap().to_vec();

        buf.update("a", &fields(99));
        assert_eq!(buf.region_image("b").unwrap(), b_before.as_slice(), "region b untouched");
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        assert_eq!(decoded[0].1.u64("v"), Some(99));
        assert_eq!(decoded[1].1.u64("v"), Some(2));
    }

    #[test]
    fn unknown_element_update_rejected() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        assert!(!buf.update("zzz", &fields(5)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = fields(7);
        let b = fields(8);
        let mut buf = CheckpointBuffer::new([("alpha", &a), ("beta", &b)]);
        let image = buf.encode();
        let decoded = CheckpointBuffer::decode(&image).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "alpha");
        assert_eq!(decoded[1].0, "beta");
        assert_eq!(decoded[0].1.u64("v"), Some(7));
    }

    #[test]
    fn truncated_image_fails_decode() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        let image = buf.encode();
        assert!(CheckpointBuffer::decode(&image[..image.len() / 2]).is_err());
    }

    #[test]
    fn incidental_corruption_not_captured() {
        // The paper's key protection: element B's state is corrupted in
        // memory, but since B never processed an event, its buffer region
        // still holds the clean image — rollback recovers B.
        let a = fields(1);
        let mut b_state = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b_state)]);
        // Corrupt B's live state *without* an event being processed.
        b_state.set("v", Value::U64(0xDEAD));
        // A processes an event; only A's region updates.
        buf.update("a", &fields(10));
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        let b_restored = &decoded.iter().find(|(n, _)| n == "b").unwrap().1;
        assert_eq!(b_restored.u64("v"), Some(2), "clean pre-corruption image survives");
    }

    #[test]
    fn counters() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        buf.update("a", &fields(2));
        buf.update("a", &fields(3));
        let _ = buf.encode();
        assert_eq!(buf.updates(), 2);
        assert_eq!(buf.commits(), 1);
        assert_eq!(buf.region_count(), 1);
    }

    /// From-scratch reference image for the given (name, state) pairs.
    fn reference_image(states: &[(&str, &Fields)]) -> Vec<u8> {
        CheckpointBuffer::new(states.iter().copied()).encode()
    }

    #[test]
    fn patched_commit_equals_full_rebuild() {
        let a0 = fields(1);
        let b0 = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a0), ("b", &b0)]);
        let _ = buf.encode(); // first commit assembles the cache
                              // Same-length change: the second commit patches in place.
        let a1 = fields(0xAB);
        buf.update("a", &a1);
        let image = buf.encode();
        assert_eq!(image, reference_image(&[("a", &a1), ("b", &b0)]));
        assert_eq!(buf.patched_commits(), 1, "second commit must patch, not rebuild");
    }

    #[test]
    fn length_change_falls_back_to_full_rebuild() {
        let mut a = Fields::new();
        a.set("s", Value::Str("ab".into()));
        let b = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b)]);
        let _ = buf.encode();
        // Growing the string changes the region's encoded length; every
        // later offset shifts, so the commit must rebuild.
        let mut a2 = Fields::new();
        a2.set("s", Value::Str("a-much-longer-string".into()));
        buf.update("a", &a2);
        let patched_before = buf.patched_commits();
        let image = buf.encode();
        assert_eq!(image, reference_image(&[("a", &a2), ("b", &b)]));
        assert_eq!(buf.patched_commits(), patched_before, "length change must rebuild");
        // And patching resumes on the refreshed offsets afterwards.
        let mut a3 = Fields::new();
        a3.set("s", Value::Str("a-MUCH-longer-string".into()));
        buf.update("a", &a3);
        let image = buf.encode();
        assert_eq!(image, reference_image(&[("a", &a3), ("b", &b)]));
        assert_eq!(buf.patched_commits(), patched_before + 1);
    }

    #[test]
    fn unchanged_state_update_is_clean() {
        let a = fields(7);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        let first = buf.encode();
        // Re-checkpointing identical state skips the copy and leaves the
        // region clean for the next commit.
        assert!(buf.update("a", &fields(7)));
        assert_eq!(buf.clean_updates(), 1);
        assert_eq!(buf.encode(), first);
    }

    #[test]
    fn duplicate_region_names_resolve_to_first_constructed() {
        // The old linear scan returned the first matching region; the
        // sorted index must preserve that.
        let a0 = fields(1);
        let a1 = fields(2);
        let mut buf = CheckpointBuffer::new([("dup", &a0), ("dup", &a1)]);
        let first = buf.region_image("dup").unwrap().to_vec();
        let mut only_first = CheckpointBuffer::new([("dup", &a0)]);
        let only_image = only_first.encode();
        // Layout: u32 count, u32 name_len, "dup", u32 img_len, image.
        assert_eq!(first.as_slice(), &only_image[4 + 4 + 3 + 4..], "first region wins lookups");
        buf.update("dup", &fields(9));
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        assert_eq!(decoded[0].1.u64("v"), Some(9), "update lands in the first region");
        assert_eq!(decoded[1].1.u64("v"), Some(2), "second region untouched");
    }
}
