//! Microcheckpointing (§3.4, Figure 4, and \[36\]).
//!
//! "Microcheckpointing leverages the modular element composition of the
//! ARMOR process to incrementally checkpoint state on an
//! element-by-element basis. After each event delivery, the state of the
//! affected element is copied to a checkpoint buffer within the ARMOR
//! process. Each element is assigned a disjoint region within the
//! checkpoint buffer. … When the ARMOR decides to make the checkpoint
//! permanent, it copies the checkpoint buffer to stable storage."
//!
//! Two properties matter for the paper's results and are enforced here:
//!
//! 1. **Only the element that processed the event is snapshotted.**
//!    Incidental corruption of *other* elements is not captured, so a
//!    clean copy survives in the buffer — why assertions + rollback
//!    prevented 58% of would-be system failures (Table 9).
//! 2. **Commit happens on every message transmission**, keeping the
//!    global checkpoint set consistent so a single process rolls back.

use crate::wire::{decode_fields, encode_fields, DecodeError};
use crate::Fields;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The in-process checkpoint buffer: one disjoint region per element.
#[derive(Debug, Clone)]
pub struct CheckpointBuffer {
    regions: Vec<Region>,
    updates: u64,
    commits: u64,
}

#[derive(Debug, Clone)]
struct Region {
    element: String,
    image: Vec<u8>,
}

impl CheckpointBuffer {
    /// Creates a buffer with one region per element name, seeded from the
    /// provided initial states.
    pub fn new<'a>(elements: impl IntoIterator<Item = (&'a str, &'a Fields)>) -> Self {
        let regions = elements
            .into_iter()
            .map(|(name, state)| Region { element: name.to_owned(), image: encode_fields(state) })
            .collect();
        CheckpointBuffer { regions, updates: 0, commits: 0 }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Copies `state` into the region of `element` — the per-event
    /// microcheckpoint step. Returns `false` if the element is unknown.
    pub fn update(&mut self, element: &str, state: &Fields) -> bool {
        match self.regions.iter_mut().find(|r| r.element == element) {
            Some(region) => {
                region.image = encode_fields(state);
                self.updates += 1;
                true
            }
            None => false,
        }
    }

    /// The current image of one region (for tests/inspection).
    pub fn region_image(&self, element: &str) -> Option<&[u8]> {
        self.regions.iter().find(|r| r.element == element).map(|r| r.image.as_slice())
    }

    /// Serialises the whole buffer into a stable-storage image.
    pub fn encode(&mut self) -> Vec<u8> {
        self.commits += 1;
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_u32(self.regions.len() as u32);
        for region in &self.regions {
            buf.put_u32(region.element.len() as u32);
            buf.put_slice(region.element.as_bytes());
            buf.put_u32(region.image.len() as u32);
            buf.put_slice(&region.image);
        }
        buf.to_vec()
    }

    /// Decodes a stable-storage image into `(element, state)` pairs.
    ///
    /// # Errors
    ///
    /// Fails on truncated or structurally invalid images — the caller
    /// treats this as "no usable checkpoint" and cold-starts.
    pub fn decode(image: &[u8]) -> Result<Vec<(String, Fields)>, DecodeError> {
        let mut buf = Bytes::copy_from_slice(image);
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = buf.get_u32() as usize;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let name_len = buf.get_u32() as usize;
            if buf.remaining() < name_len {
                return Err(DecodeError::Truncated);
            }
            let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
                .map_err(|_| DecodeError::BadUtf8)?;
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let img_len = buf.get_u32() as usize;
            if buf.remaining() < img_len {
                return Err(DecodeError::Truncated);
            }
            let img = buf.copy_to_bytes(img_len);
            let fields = decode_fields(&img)?;
            out.push((name, fields));
        }
        Ok(out)
    }

    /// Count of per-event region updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Count of stable-storage commits.
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn fields(n: u64) -> Fields {
        let mut f = Fields::new();
        f.set("v", Value::U64(n));
        f
    }

    #[test]
    fn update_touches_only_named_region() {
        let a = fields(1);
        let b = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b)]);
        let b_before = buf.region_image("b").unwrap().to_vec();

        buf.update("a", &fields(99));
        assert_eq!(buf.region_image("b").unwrap(), b_before.as_slice(), "region b untouched");
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        assert_eq!(decoded[0].1.u64("v"), Some(99));
        assert_eq!(decoded[1].1.u64("v"), Some(2));
    }

    #[test]
    fn unknown_element_update_rejected() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        assert!(!buf.update("zzz", &fields(5)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = fields(7);
        let b = fields(8);
        let mut buf = CheckpointBuffer::new([("alpha", &a), ("beta", &b)]);
        let image = buf.encode();
        let decoded = CheckpointBuffer::decode(&image).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "alpha");
        assert_eq!(decoded[1].0, "beta");
        assert_eq!(decoded[0].1.u64("v"), Some(7));
    }

    #[test]
    fn truncated_image_fails_decode() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        let image = buf.encode();
        assert!(CheckpointBuffer::decode(&image[..image.len() / 2]).is_err());
    }

    #[test]
    fn incidental_corruption_not_captured() {
        // The paper's key protection: element B's state is corrupted in
        // memory, but since B never processed an event, its buffer region
        // still holds the clean image — rollback recovers B.
        let a = fields(1);
        let mut b_state = fields(2);
        let mut buf = CheckpointBuffer::new([("a", &a), ("b", &b_state)]);
        // Corrupt B's live state *without* an event being processed.
        b_state.set("v", Value::U64(0xDEAD));
        // A processes an event; only A's region updates.
        buf.update("a", &fields(10));
        let decoded = CheckpointBuffer::decode(&buf.encode()).unwrap();
        let b_restored = &decoded.iter().find(|(n, _)| n == "b").unwrap().1;
        assert_eq!(b_restored.u64("v"), Some(2), "clean pre-corruption image survives");
    }

    #[test]
    fn counters() {
        let a = fields(1);
        let mut buf = CheckpointBuffer::new([("a", &a)]);
        buf.update("a", &fields(2));
        buf.update("a", &fields(3));
        let _ = buf.encode();
        assert_eq!(buf.updates(), 2);
        assert_eq!(buf.commits(), 1);
        assert_eq!(buf.region_count(), 1);
    }
}
