//! Wire/checkpoint encoding of element state.
//!
//! Checkpoints are committed as bytes to the node RAM disk (§3.4); the
//! encoding is explicit and versioned so a restore can *fail detectably*
//! (truncated or structurally invalid images fall back to cold start)
//! while a semantically corrupted-but-well-formed image restores
//! "successfully" into a bad state — exactly the failure mode behind the
//! paper's checkpoint-corruption system failures (§6.1).

use crate::value::{Fields, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_BOOL: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_PTR: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;

/// Error decoding a checkpoint or wire image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-structure.
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Structure nesting exceeded sanity bounds.
    TooDeep,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "image truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
            DecodeError::TooDeep => write!(f, "structure nested too deeply"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAX_DEPTH: usize = 32;

fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::U64(v) => {
            buf.put_u8(TAG_U64);
            buf.put_u64(*v);
        }
        Value::I64(v) => {
            buf.put_u8(TAG_I64);
            buf.put_i64(*v);
        }
        Value::F64(v) => {
            buf.put_u8(TAG_F64);
            buf.put_u64(v.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Ptr(v) => {
            buf.put_u8(TAG_PTR);
            buf.put_u64(*v);
        }
        Value::List(items) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32(items.len() as u32);
            for item in items {
                encode_value(item, buf);
            }
        }
        Value::Map(map) => {
            buf.put_u8(TAG_MAP);
            buf.put_u32(map.len() as u32);
            for (k, v) in map {
                buf.put_u32(k.len() as u32);
                buf.put_slice(k.as_bytes());
                encode_value(v, buf);
            }
        }
    }
}

fn take_string(buf: &mut Bytes) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

fn decode_value(buf: &mut Bytes, depth: usize) -> Result<Value, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        TAG_U64 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::U64(buf.get_u64()))
        }
        TAG_I64 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::I64(buf.get_i64()))
        }
        TAG_F64 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::F64(f64::from_bits(buf.get_u64())))
        }
        TAG_STR => Ok(Value::Str(take_string(buf)?)),
        TAG_PTR => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(Value::Ptr(buf.get_u64()))
        }
        TAG_LIST => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u32() as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(buf, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        TAG_MAP => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let n = buf.get_u32() as usize;
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = take_string(buf)?;
                let v = decode_value(buf, depth + 1)?;
                map.insert(k, v);
            }
            Ok(Value::Map(map))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

/// Serialises element state to a checkpoint image.
pub fn encode_fields(fields: &Fields) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    encode_fields_into(fields, &mut buf);
    buf.to_vec()
}

/// [`encode_fields`] into a caller-held buffer (appended), so per-event
/// microcheckpoint updates can reuse one scratch allocation.
pub fn encode_fields_into(fields: &Fields, buf: &mut BytesMut) {
    buf.put_u32(fields.len() as u32);
    for (name, value) in fields.iter() {
        buf.put_u32(name.len() as u32);
        buf.put_slice(name.as_bytes());
        encode_value(value, buf);
    }
}

/// Deserialises a checkpoint image back into element state.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, malformed, or over-nested
/// images; callers treat that as an unusable checkpoint (cold start).
pub fn decode_fields(bytes: &[u8]) -> Result<Fields, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32() as usize;
    let mut fields = Fields::new();
    for _ in 0..n {
        let name = take_string(&mut buf)?;
        let value = decode_value(&mut buf, 0)?;
        fields.set(name, value);
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample() -> Fields {
        let mut f = Fields::new();
        f.set("flag", Value::Bool(true));
        f.set("count", Value::U64(42));
        f.set("delta", Value::I64(-7));
        f.set("temp", Value::F64(271.35));
        f.set("host", Value::Str("node2".into()));
        f.set("link", Value::Ptr(0xbeef));
        f.set(
            "list",
            Value::List(vec![Value::U64(1), Value::Str("two".into()), Value::Bool(false)]),
        );
        let mut m = BTreeMap::new();
        m.insert("inner".to_owned(), Value::List(vec![Value::F64(-0.5)]));
        f.set("map", Value::Map(m));
        f
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let f = sample();
        let bytes = encode_fields(&f);
        let back = decode_fields(&bytes).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn empty_fields_roundtrip() {
        let f = Fields::new();
        let back = decode_fields(&encode_fields(&f)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_image_is_detected() {
        let bytes = encode_fields(&sample());
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            let res = decode_fields(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn bad_tag_is_detected() {
        let mut f = Fields::new();
        f.set("x", Value::U64(1));
        let mut bytes = encode_fields(&f);
        // Corrupt the value tag byte (after count + name length + name).
        let tag_pos = 4 + 4 + 1;
        bytes[tag_pos] = 0xEE;
        assert_eq!(decode_fields(&bytes), Err(DecodeError::BadTag(0xEE)));
    }

    #[test]
    fn semantically_corrupt_but_wellformed_image_decodes() {
        // Flip a bit inside an integer payload: decode succeeds, value is
        // wrong — the checkpoint-corruption mechanism of §6.1.
        let mut f = Fields::new();
        f.set("count", Value::U64(42));
        let mut bytes = encode_fields(&f);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let back = decode_fields(&bytes).unwrap();
        assert_eq!(back.u64("count"), Some(43));
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadTag(9).to_string().contains('9'));
    }
}
