//! ARMOR events and messages.
//!
//! "A message consists of sequential events that trigger element actions.
//! Elements subscribe to events that they are designed to process, and an
//! element's state can only be modified while processing message events"
//! (§3.1). Events carry [`Fields`] payloads — the same corruptible
//! representation as element state, so a corrupted sender produces
//! *poisoned* events whose bad data flows to receivers (the §6.1
//! propagation scenarios).

use crate::value::{Fields, Value};

/// Unique ARMOR identity — "each ARMOR is addressed by a unique
/// identification number, allowing messages to be sent to an ARMOR without
/// prior knowledge of the ARMOR's physical location" (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArmorId(pub u32);

impl std::fmt::Display for ArmorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "armor{}", self.0)
    }
}

impl ArmorId {
    /// The reserved "null" identity. The paper's `node_mgmt` element
    /// returns daemon ID **zero** when a hostname translation fails — the
    /// unchecked default behind several Table 8 system failures.
    pub const NULL: ArmorId = ArmorId(0);
}

/// One event within an ARMOR message.
#[derive(Clone, Debug, PartialEq)]
pub struct ArmorEvent {
    /// Event tag; elements subscribe by tag.
    pub tag: &'static str,
    /// Payload fields.
    pub fields: Fields,
}

impl ArmorEvent {
    /// Creates an event with empty payload.
    pub fn new(tag: &'static str) -> Self {
        ArmorEvent { tag, fields: Fields::new() }
    }

    /// Builder-style field attachment.
    pub fn with(mut self, name: &str, value: Value) -> Self {
        self.fields.set(name, value);
        self
    }

    /// Reads an unsigned field.
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.fields.u64(name)
    }

    /// Reads a string field.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.fields.get(name).and_then(Value::as_str)
    }

    /// Reads an [`ArmorId`] field (stored as `U64`).
    pub fn armor_id(&self, name: &str) -> Option<ArmorId> {
        self.fields.u64(name).map(|v| ArmorId(v as u32))
    }
}

/// Delivery class of an ARMOR wire packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireKind {
    /// Application data (a sequence of events).
    Data,
    /// Acknowledgement of a data packet.
    Ack,
}

/// A message between ARMORs: addressed by [`ArmorId`], carried by the
/// daemon gateways, acknowledged end-to-end.
#[derive(Clone, Debug)]
pub struct ArmorMessage {
    /// Sender identity.
    pub src: ArmorId,
    /// Destination identity.
    pub dst: ArmorId,
    /// Per-sender sequence number (set by the comm layer).
    pub seq: u64,
    /// The events to deliver, in order.
    pub events: Vec<ArmorEvent>,
}

impl ArmorMessage {
    /// Approximate wire size (for the network model).
    pub fn wire_size(&self) -> u64 {
        let payload: usize =
            self.events.iter().map(|e| e.tag.len() + 16 + e.fields.leaf_count() * 24).sum();
        64 + payload as u64
    }
}

/// A wire packet exchanged through daemons: data or ack.
#[derive(Clone, Debug)]
pub enum WirePacket {
    /// Data message.
    Data(ArmorMessage),
    /// Ack for (src→dst, seq).
    Ack {
        /// Original sender being acknowledged.
        src: ArmorId,
        /// Acknowledging receiver.
        dst: ArmorId,
        /// Sequence number acknowledged.
        seq: u64,
    },
}

impl WirePacket {
    /// The destination ARMOR that should receive this packet.
    pub fn destination(&self) -> ArmorId {
        match self {
            WirePacket::Data(m) => m.dst,
            WirePacket::Ack { src, .. } => *src,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        match self {
            WirePacket::Data(m) => m.wire_size(),
            WirePacket::Ack { .. } => 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_builder_and_accessors() {
        let ev = ArmorEvent::new("app-terminated")
            .with("rank", Value::U64(0))
            .with("app", Value::Str("texture".into()))
            .with("exec_armor", Value::U64(17));
        assert_eq!(ev.u64("rank"), Some(0));
        assert_eq!(ev.str("app"), Some("texture"));
        assert_eq!(ev.armor_id("exec_armor"), Some(ArmorId(17)));
        assert_eq!(ev.u64("missing"), None);
    }

    #[test]
    fn wire_packet_destination() {
        let msg = ArmorMessage {
            src: ArmorId(1),
            dst: ArmorId(2),
            seq: 5,
            events: vec![ArmorEvent::new("x")],
        };
        assert_eq!(WirePacket::Data(msg).destination(), ArmorId(2));
        // Acks travel back to the original sender.
        let ack = WirePacket::Ack { src: ArmorId(1), dst: ArmorId(2), seq: 5 };
        assert_eq!(ack.destination(), ArmorId(1));
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = ArmorMessage {
            src: ArmorId(1),
            dst: ArmorId(2),
            seq: 0,
            events: vec![ArmorEvent::new("a")],
        };
        let big = ArmorMessage {
            src: ArmorId(1),
            dst: ArmorId(2),
            seq: 0,
            events: vec![ArmorEvent::new("a")
                .with("x", Value::U64(1))
                .with("y", Value::Str("zzz".into()))],
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn null_armor_id_is_zero() {
        assert_eq!(ArmorId::NULL, ArmorId(0));
    }
}
