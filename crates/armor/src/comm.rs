//! Reliable point-to-point ARMOR messaging.
//!
//! All ARMORs "implement reliable point-to-point message communication"
//! (§3.1): sequence numbers, end-to-end acknowledgements, retransmission,
//! and duplicate suppression. Two protocol details are load-bearing for
//! the paper's failure scenarios and are implemented exactly:
//!
//! * **Acks are sent only after a message is fully processed.** A
//!   receiver that crashes mid-processing never acks, so the sender
//!   retransmits into the recovered process — the §6.1 "corrupted
//!   notification crashes the FTM in a loop" mechanism depends on this.
//! * **Duplicates are dropped before processing** (and re-acked). The
//!   Figure 10 race leaves the Execution ARMOR unrecovered because the
//!   daemon's *resent* failure notification is classified as a duplicate.
//!
//! The comm state is volatile: it is *not* checkpointed, matching the
//! paper (a recovered ARMOR neither remembers which messages it saw nor
//! which sends were outstanding).

use crate::event::{ArmorEvent, ArmorId, ArmorMessage, WirePacket};
use ree_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Outcome of handing an inbound packet to the comm layer.
#[derive(Debug)]
pub enum Inbound {
    /// Fresh data message: process it, then call
    /// [`ReliableComm::acknowledge`] on success.
    Deliver(ArmorMessage),
    /// Duplicate of an already-seen message: re-ack, do not process.
    DuplicateReAck(WirePacket),
    /// An ack consumed a pending transmission.
    AckConsumed,
    /// Stale or unknown ack.
    AckIgnored,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: ArmorMessage,
    last_sent: SimTime,
    retries: u32,
}

/// Per-ARMOR reliable messaging state.
#[derive(Debug, Clone)]
pub struct ReliableComm {
    me: ArmorId,
    next_seq: u64,
    pending: BTreeMap<u64, Pending>,
    /// Duplicate-suppression state: per-peer sets of seen sequence
    /// numbers. An ARMOR talks to a handful of peers and each set is
    /// bounded at `max_seen`, so both levels are sorted small vecs
    /// (binary search, no hashing — this was a measured ~3% of campaign
    /// CPU as a `HashMap<ArmorId, BTreeSet<u64>>`).
    seen: Vec<(ArmorId, Vec<u64>)>,
    retransmit_after: SimDuration,
    max_seen: usize,
    retransmissions: u64,
}

impl ReliableComm {
    /// Creates comm state for the given ARMOR identity.
    pub fn new(me: ArmorId, retransmit_after: SimDuration) -> Self {
        ReliableComm {
            me,
            next_seq: 1,
            pending: BTreeMap::new(),
            seen: Vec::new(),
            retransmit_after,
            max_seen: 256,
            retransmissions: 0,
        }
    }

    /// This ARMOR's identity.
    pub fn me(&self) -> ArmorId {
        self.me
    }

    /// Rebases the sequence counter to start above `base`.
    ///
    /// A recovered ARMOR must not reuse sequence numbers its previous
    /// incarnation already consumed — surviving peers still hold those
    /// in their duplicate-suppression sets and would silently drop the
    /// new incarnation's messages. Seeding from the (never reused) OS
    /// pid guarantees monotonicity across incarnations.
    pub fn rebase(&mut self, base: u64) {
        if self.next_seq <= base {
            self.next_seq = base + 1;
        }
    }

    /// Builds a data packet for `events`, registering it for
    /// retransmission until acknowledged.
    pub fn send(&mut self, now: SimTime, dst: ArmorId, events: Vec<ArmorEvent>) -> WirePacket {
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = ArmorMessage { src: self.me, dst, seq, events };
        self.pending.insert(seq, Pending { msg: msg.clone(), last_sent: now, retries: 0 });
        WirePacket::Data(msg)
    }

    /// Builds a fire-and-forget data packet: no retransmission state is
    /// kept, so a lost or receiver-crashing message is simply gone.
    /// Heartbeat pings/acks use this — their liveness semantics come from
    /// the next cycle, not from retransmission (and a poisoned ping must
    /// not re-crash its target forever).
    pub fn send_unreliable(&mut self, dst: ArmorId, events: Vec<ArmorEvent>) -> WirePacket {
        let seq = self.next_seq;
        self.next_seq += 1;
        WirePacket::Data(ArmorMessage { src: self.me, dst, seq, events })
    }

    /// The (sorted) seen-sequence set for `src`, created on first use.
    fn seen_set(&mut self, src: ArmorId) -> &mut Vec<u64> {
        let i = match self.seen.binary_search_by_key(&src, |(id, _)| *id) {
            Ok(i) => i,
            Err(i) => {
                self.seen.insert(i, (src, Vec::new()));
                i
            }
        };
        &mut self.seen[i].1
    }

    /// True if `seq` from `src` was already seen (without allocating a
    /// set for a never-seen peer).
    fn already_seen(&self, src: ArmorId, seq: u64) -> bool {
        self.seen
            .binary_search_by_key(&src, |(id, _)| *id)
            .is_ok_and(|i| self.seen[i].1.binary_search(&seq).is_ok())
    }

    /// Handles an inbound packet addressed to this ARMOR.
    pub fn on_packet(&mut self, packet: WirePacket) -> Inbound {
        match packet {
            WirePacket::Data(msg) => {
                if self.already_seen(msg.src, msg.seq) {
                    Inbound::DuplicateReAck(WirePacket::Ack {
                        src: msg.src,
                        dst: self.me,
                        seq: msg.seq,
                    })
                } else {
                    Inbound::Deliver(msg)
                }
            }
            WirePacket::Ack { seq, .. } => {
                if self.pending.remove(&seq).is_some() {
                    Inbound::AckConsumed
                } else {
                    Inbound::AckIgnored
                }
            }
        }
    }

    /// Marks a delivered message as seen and produces its ack. Call only
    /// after the message was *fully processed* — crashing before this
    /// point leaves the message unacknowledged (§6.1 semantics).
    pub fn acknowledge(&mut self, msg: &ArmorMessage) -> WirePacket {
        let max_seen = self.max_seen;
        let seen = self.seen_set(msg.src);
        if let Err(i) = seen.binary_search(&msg.seq) {
            seen.insert(i, msg.seq);
        }
        while seen.len() > max_seen {
            // Oldest = smallest sequence number (front of the sorted vec).
            seen.remove(0);
        }
        WirePacket::Ack { src: msg.src, dst: self.me, seq: msg.seq }
    }

    /// Marks a message seen *without* acknowledging it — the Figure 10
    /// "handling thread aborted" path: the message counts as processed
    /// for dedup purposes, but the sender never learns.
    pub fn mark_seen_unacked(&mut self, msg: &ArmorMessage) {
        let seen = self.seen_set(msg.src);
        if let Err(i) = seen.binary_search(&msg.seq) {
            seen.insert(i, msg.seq);
        }
    }

    /// Returns packets due for retransmission at `now`.
    pub fn tick(&mut self, now: SimTime) -> Vec<WirePacket> {
        let mut out = Vec::new();
        for pending in self.pending.values_mut() {
            if now.since(pending.last_sent) >= self.retransmit_after {
                pending.last_sent = now;
                pending.retries += 1;
                self.retransmissions += 1;
                out.push(WirePacket::Data(pending.msg.clone()));
            }
        }
        out
    }

    /// Number of unacknowledged sends.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Lifetime retransmission count.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<ArmorEvent> {
        vec![ArmorEvent::new("test-event")]
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn send_then_ack_clears_pending() {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let mut b = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        let pkt = a.send(t(0), ArmorId(2), events());
        assert_eq!(a.pending_count(), 1);

        let Inbound::Deliver(msg) = b.on_packet(pkt) else { panic!("expected deliver") };
        let ack = b.acknowledge(&msg);
        assert!(matches!(a.on_packet(ack), Inbound::AckConsumed));
        assert_eq!(a.pending_count(), 0);
    }

    #[test]
    fn unacked_messages_retransmit_until_acked() {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let _ = a.send(t(0), ArmorId(2), events());
        assert!(a.tick(t(1)).is_empty(), "not due yet");
        assert_eq!(a.tick(t(2)).len(), 1);
        assert_eq!(a.tick(t(2)).len(), 0, "just resent");
        assert_eq!(a.tick(t(4)).len(), 1);
        assert_eq!(a.retransmissions(), 2);
    }

    #[test]
    fn duplicate_is_not_redelivered_but_is_reacked() {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let mut b = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        let pkt = a.send(t(0), ArmorId(2), events());
        let copy = pkt.clone();

        let Inbound::Deliver(msg) = b.on_packet(pkt) else { panic!() };
        let _ack = b.acknowledge(&msg);
        // Ack lost; sender retransmits; receiver must re-ack without
        // reprocessing.
        match b.on_packet(copy) {
            Inbound::DuplicateReAck(WirePacket::Ack { seq, .. }) => assert_eq!(seq, msg.seq),
            other => panic!("expected duplicate re-ack, got {other:?}"),
        }
    }

    #[test]
    fn crash_before_ack_means_redelivery_after_recovery() {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let pkt = a.send(t(0), ArmorId(2), events());

        // Receiver "crashes" mid-processing: its comm state is rebuilt
        // from scratch (volatile), and it never acked.
        let mut b = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        let Inbound::Deliver(_) = b.on_packet(pkt) else { panic!() };
        drop(b); // crash: seen-set lost, no ack sent

        let mut b2 = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        let retrans = a.tick(t(3));
        assert_eq!(retrans.len(), 1);
        // The recovered receiver treats the retransmission as fresh — the
        // crash loop of §6.1 is possible.
        assert!(matches!(b2.on_packet(retrans.into_iter().next().unwrap()), Inbound::Deliver(_)));
    }

    #[test]
    fn mark_seen_unacked_reproduces_figure_10_loss() {
        let mut daemon = ReliableComm::new(ArmorId(3), SimDuration::from_secs(2));
        let mut ftm = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let pkt = daemon.send(t(0), ArmorId(1), events());

        // FTM processes the notification but the handling thread aborts:
        // seen, not acked.
        let Inbound::Deliver(msg) = ftm.on_packet(pkt) else { panic!() };
        ftm.mark_seen_unacked(&msg);

        // Daemon times out and resends; FTM drops it as a duplicate. The
        // Execution ARMOR is never recovered.
        let retrans = daemon.tick(t(3)).into_iter().next().unwrap();
        assert!(matches!(ftm.on_packet(retrans), Inbound::DuplicateReAck(_)));
    }

    #[test]
    fn stale_ack_ignored() {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        assert!(matches!(
            a.on_packet(WirePacket::Ack { src: ArmorId(1), dst: ArmorId(2), seq: 99 }),
            Inbound::AckIgnored
        ));
    }

    #[test]
    fn seen_set_is_bounded() {
        let mut b = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        for _ in 0..600 {
            let pkt = a.send(t(0), ArmorId(2), events());
            if let Inbound::Deliver(msg) = b.on_packet(pkt) {
                let _ = b.acknowledge(&msg);
            }
        }
        assert!(b.seen_set(ArmorId(1)).len() <= 256);
    }
}
