//! Offline stand-in for the crates.io [`proptest`] crate.
//!
//! The build container has no network access, so the workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, [`any`](arbitrary::any), integer
//! ranges and simple `[class]{m,n}` string patterns as strategies,
//! [`collection::vec`](fn@collection::vec) / [`collection::btree_map`], and the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: inputs are generated from a per-test
//! deterministic seed and failures are **not shrunk** — a failing case
//! reports the panic from the raw generated input. The number of cases
//! per property defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree or shrinking; a strategy
    /// simply samples a value from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `f`, regenerating (upstream
        /// rejects and retries similarly). Panics if `f` rejects 1000
        /// samples in a row.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into a branch strategy, up
        /// to `depth` levels deep. `desired_size` and `expected_branch`
        /// are accepted for upstream compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            desired_size: u32,
            expected_branch: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let _ = (desired_size, expected_branch);
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
            }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident : $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// A type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence);
        }
    }

    /// Strategy returned by [`Strategy::prop_recursive`].
    #[derive(Clone)]
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Sample a nesting level biased toward shallow structures,
            // then stack `recurse` that many times over the leaf
            // strategy.
            let mut levels = 0;
            while levels < self.depth && rng.below(2) == 0 {
                levels += 1;
            }
            let mut strat = self.base.clone();
            for _ in 0..levels {
                strat = (self.recurse)(strat.clone());
            }
            strat.generate(rng)
        }
    }

    /// Uniform choice between type-erased strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Compute the span in the unsigned counterpart so a
                    // wrapped (negative-looking) difference widens to
                    // u64 zero-extended, not sign-extended.
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $u as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    /// `&str` patterns act as string strategies for the subset
    /// `[class]{m,n}` / `[class]{m}` / literal characters that the test
    /// suites use (e.g. `"[a-z0-9_/.-]{0,24}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary {
        /// Samples an unconstrained value of this type.
        fn sample(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    /// The canonical strategy for `T`, analogous to upstream
    /// `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample(rng: &mut TestRng) -> $t {
                    // Mix full-range values with small ones so edge-ish
                    // magnitudes show up often, mirroring upstream's
                    // bias toward "interesting" integers.
                    match rng.below(4) {
                        0 => (rng.below(16) as $t).wrapping_sub(8 as $t),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn sample(rng: &mut TestRng) -> f64 {
            // Mostly reinterpreted random bits (covers subnormals,
            // infinities, NaN) with some human-scale values mixed in.
            match rng.below(4) {
                0 => (rng.f64() - 0.5) * 2e6,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }
}

pub mod collection {
    //! Collection strategies: [`vec`](fn@vec) and [`btree_map`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy returned by [`vec`](fn@vec).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length lies in `size`, with elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.clone().generate(rng);
            let mut map = BTreeMap::new();
            // Key collisions may make the map smaller than `len`, as
            // upstream allows.
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Generates a `BTreeMap` with up to `size` entries, keys from
    /// `key` and values from `value`.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }
}

pub mod string {
    //! Tiny regex-subset string generation backing `&str` strategies.

    use crate::test_runner::TestRng;

    enum Token {
        Class(Vec<char>),
        Literal(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        let mut pending: Option<char> = None;
        while let Some(c) = chars.next() {
            if c == ']' {
                if let Some(p) = pending {
                    out.push(p);
                }
                return out;
            }
            match pending {
                None => pending = Some(c),
                Some(p) if c == '-' => {
                    // Range only if a range end follows; `-]` is literal.
                    match chars.peek() {
                        Some(&end) if end != ']' => {
                            chars.next();
                            for r in p..=end {
                                out.push(r);
                            }
                            pending = None;
                        }
                        _ => {
                            out.push(p);
                            pending = Some('-');
                        }
                    }
                }
                Some(p) => {
                    out.push(p);
                    pending = Some(c);
                }
            }
        }
        panic!("unterminated character class in string pattern");
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                    None => {
                        let n = spec.trim().parse().unwrap();
                        (n, n)
                    }
                };
                assert!(lo <= hi, "bad quantifier {{{spec}}}");
                return (lo, hi);
            }
            spec.push(c);
        }
        panic!("unterminated quantifier in string pattern");
    }

    /// Generates a string matching `pattern`, which must be a
    /// concatenation of literal characters and `[...]` classes, each
    /// optionally followed by `{m}` or `{m,n}`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let token =
                if c == '[' { Token::Class(parse_class(&mut chars)) } else { Token::Literal(c) };
            let (lo, hi) = parse_quantifier(&mut chars);
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                match &token {
                    Token::Class(opts) => {
                        assert!(!opts.is_empty(), "empty character class");
                        out.push(opts[rng.below(opts.len() as u64) as usize]);
                    }
                    Token::Literal(l) => out.push(*l),
                }
            }
        }
        out
    }
}

pub mod test_runner {
    //! Deterministic RNG and case-count plumbing for [`proptest!`](crate::proptest).

    /// Deterministic xorshift-style RNG seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Creates an RNG deterministically seeded from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            // Multiply-shift bounded sampling; bias is negligible for
            // test generation purposes.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Number of generated cases per property: `PROPTEST_CASES` env var
    /// or 64.
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u64..10, flag in any::<bool>()) { ... }
/// }
/// ```
///
/// Each test body runs once per generated case (see
/// [`test_runner::case_count`]); assertion macros panic on failure
/// (there is no shrinking in this stand-in).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::case_count();
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let __case: usize = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion; panics with the condition (and optional message)
/// on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z0-9_/.-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || matches!(c, '_' | '/' | '.' | '-')));
        }
        let fixed = crate::string::generate_from_pattern("ab{3}[x]{2}", &mut rng);
        assert_eq!(fixed, "abbbxx");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let i = Strategy::generate(&(-4i64..4), &mut rng);
            assert!((-4..4).contains(&i));
            // Narrow signed type whose span wraps: must stay in range
            // (regression: the wrapped span used to sign-extend).
            let n = Strategy::generate(&(-100i8..100), &mut rng);
            assert!((-100..100).contains(&n));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, flag in any::<bool>(), s in "[a-c]{1,4}") {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert_eq!(u64::from(flag) <= 1, true);
        }
    }
}
