//! Offline stand-in for the crates.io [`bytes`] crate.
//!
//! The build container has no network access, so the workspace vendors
//! the small API subset the ARMOR wire/checkpoint encoders actually use:
//! [`Bytes`] / [`BytesMut`] plus the [`Buf`] / [`BufMut`] traits with
//! big-endian integer accessors (matching upstream's defaults). It is
//! a drop-in for that subset only — swap back to the real crate by
//! changing one line in the workspace manifest if the registry becomes
//! reachable.
//!
//! [`bytes`]: https://docs.rs/bytes

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
///
/// Upstream `Bytes` is a cheaply-cloneable view; this stand-in owns its
/// storage. Reads via [`Buf`] consume from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let start = self.pos;
        assert!(
            n <= self.data.len() - start,
            "advance past end of buffer: {} > {}",
            n,
            self.data.len() - start
        );
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the written bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Clears the buffer, keeping its allocation (scratch-buffer reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer; integer reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);
    /// Consumes `len` bytes into a new [`Bytes`]. Panics if short.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }
    /// Reads a big-endian `u32`. Panics if short.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_bytes(4).to_vec().try_into().unwrap())
    }
    /// Reads a big-endian `u64`. Panics if short.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_bytes(8).to_vec().try_into().unwrap())
    }
    /// Reads a big-endian `i64`. Panics if short.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.copy_to_bytes(8).to_vec().try_into().unwrap())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        self.take(cnt);
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::copy_from_slice(self.take(len))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self[..len]);
        *self = &self[len..];
        out
    }
}

/// Write access to a byte buffer; integer writes are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-9);
        buf.put_slice(b"hi");
        let mut r = Bytes::copy_from_slice(&buf.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_i64(), -9);
        assert_eq!(r.copy_to_bytes(2).to_vec(), b"hi");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn u64_last_byte_is_lsb() {
        // The checkpoint-corruption tests rely on upstream's big-endian
        // layout: flipping the final payload byte perturbs the low bits.
        let mut buf = BytesMut::new();
        buf.put_u64(42);
        let mut image = buf.to_vec();
        *image.last_mut().unwrap() ^= 0x01;
        let mut r = Bytes::copy_from_slice(&image);
        assert_eq!(r.get_u64(), 43);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32();
    }
}
