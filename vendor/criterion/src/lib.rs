//! Offline stand-in for the crates.io [`criterion`] crate.
//!
//! The build container has no network access, so the workspace vendors
//! the API subset its benches use: [`Criterion`] with
//! `benchmark_group` / `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! runs `sample_size` measured samples (after one warm-up batch) and
//! prints the mean wall-clock time per iteration — enough to eyeball
//! regressions; there is no statistical analysis or HTML report.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget; sampling stops early
    /// once it is exhausted.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (one batch is always run; extra warm-up
    /// repeats until the budget is spent).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: None }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            samples,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{}: {:>12?} /iter ({} iterations)",
            self.name, id, bencher.mean, bencher.iterations
        );
        self
    }

    /// Ends the group (upstream requires this to flush reports).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: usize,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, recording the mean wall-clock time per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: at least one call, more until the budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            count += 1;
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = total / u32::try_from(count).unwrap_or(u32::MAX).max(1);
        self.iterations = count;
    }
}

/// Bundles benchmark functions into a group runner, in either the
/// simple form `criterion_group!(benches, f1, f2)` or the configured
/// form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // One-plus warm-up calls, then at most `sample_size` samples.
        assert!(calls >= 2);
    }

    criterion_group!(smoke_simple, noop_bench);
    criterion_group! {
        name = smoke_configured;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10)).warm_up_time(Duration::from_millis(1));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(2).bench_function("nothing", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn group_macros_expand() {
        smoke_simple();
        smoke_configured();
    }
}
