//! Integration tests for the recovery machinery itself: checkpoint
//! restore, fork-image recovery with text-corruption propagation, and
//! application status-file restarts.

use ree::experiments::Scenario;
use ree::os::Signal;
use ree::sim::SimTime;

#[test]
fn recovered_exec_armor_restores_state_from_checkpoint() {
    let scenario = Scenario::single_texture(51);
    let mut run = scenario.start();
    run.run_until(SimTime::from_secs(30));
    let exec = run.cluster.find_by_name("exec0_0").expect("exec armor");
    run.cluster.send_signal(exec, Signal::Int);
    run.run_until(SimTime::from_secs(36));
    // A new incarnation exists and restored from the RAM-disk checkpoint.
    let new_exec = run.cluster.find_by_name("exec0_0").expect("reinstalled");
    assert_ne!(new_exec, exec, "a fresh process must exist");
    assert!(run.cluster.trace().contains("exec0_0 restored state from checkpoint"));
    assert!(run.run_until_done(SimTime::from_secs(300)));
    assert_eq!(run.job_times(0).unwrap().restarts, 0, "state restore avoids an app restart");
}

#[test]
fn repeated_failures_force_image_reload_from_disk() {
    // §3.4 footnote: after repeated fork-image recoveries the daemon
    // reloads a pristine image from disk.
    let scenario = Scenario::single_texture(53);
    let mut run = scenario.start();
    for round in 0..4u64 {
        run.run_until(SimTime::from_secs(20 + round * 8));
        if let Some(exec) = run.cluster.find_by_name("exec0_0") {
            run.cluster.send_signal(exec, Signal::Int);
        }
    }
    run.run_until(SimTime::from_secs(60));
    assert!(
        run.cluster.trace().contains("reloading image from disk"),
        "the image-reload path must trigger after repeated failures"
    );
    assert!(run.run_until_done(SimTime::from_secs(400)));
}

#[test]
fn application_restart_skips_completed_filters() {
    // §2: "If the application restarts, it can skip filters that have
    // already completed, but it must redo any filtering that was
    // interrupted."
    let scenario = Scenario::single_texture(57);
    let mut run = scenario.start();
    // Let two filter phases finish (load 3 s + 2 × 19 s ≈ 45 s), then
    // crash a rank.
    run.run_until(SimTime::from_secs(55));
    let rank0 = run
        .cluster
        .all_procs()
        .into_iter()
        .find(|p| run.cluster.name_of(*p).map(|n| n.contains("texture-r0")).unwrap_or(false))
        .expect("rank 0 alive");
    run.cluster.send_signal(rank0, Signal::Int);
    assert!(run.run_until_done(SimTime::from_secs(400)));
    let times = run.job_times(0).unwrap();
    assert_eq!(times.restarts, 1, "exactly one restart");
    let actual = times.actual().unwrap().as_secs_f64();
    // A full redo would cost ~74 s extra; skipping completed filters
    // keeps the overhead well under that.
    assert!(
        actual < 74.3 + 55.0,
        "actual {actual} suggests completed filters were redone from scratch"
    );
    // And the output is still correct.
    let verdict = ree::apps::verify::verify_texture(
        run.cluster.remote_fs_ref(),
        "texture",
        0,
        0,
        scenario.texture.image_px,
        scenario.texture.tile_px,
        scenario.texture.clusters,
    );
    assert_eq!(verdict, ree::apps::Verdict::Correct);
}

#[test]
fn heartbeat_armor_failure_is_invisible_to_the_application() {
    // §5.2: "Direct SIGINT/SIGSTOP injections into the Heartbeat ARMOR
    // did not affect the application."
    let scenario = Scenario::single_texture(59);
    let mut run = scenario.start();
    run.run_until(SimTime::from_secs(30));
    let hb = run.cluster.find_by_name("heartbeat").expect("hb armor");
    run.cluster.send_signal(hb, Signal::Int);
    assert!(run.run_until_done(SimTime::from_secs(300)));
    let times = run.job_times(0).unwrap();
    let perceived = times.perceived().unwrap().as_secs_f64();
    assert!((74.0..78.5).contains(&perceived), "perceived {perceived} should match baseline");
    // And the Heartbeat ARMOR itself was recovered by the FTM.
    assert!(run.cluster.find_by_name("heartbeat").is_some());
}

#[test]
fn node_failure_migrates_the_heartbeat_armor() {
    // §7.1: a daemon failure is treated as a node failure; "the FTM
    // migrated the Heartbeat ARMOR to another node. The application was
    // able to complete in spite of the daemon failure."
    let scenario = Scenario::single_texture(61);
    let mut run = scenario.start();
    run.run_until(SimTime::from_secs(10));
    let hb_node = run
        .cluster
        .find_by_name("heartbeat")
        .and_then(|p| run.cluster.node_of(p))
        .expect("hb placed");
    run.cluster.fail_node(hb_node);
    let done = run.run_until_done(SimTime::from_secs(500));
    assert!(done, "application must complete despite the node failure");
    let hb_new_node = run.cluster.find_by_name("heartbeat").and_then(|p| run.cluster.node_of(p));
    assert!(hb_new_node.is_some(), "heartbeat ARMOR must be reinstalled somewhere");
    assert_ne!(hb_new_node, Some(hb_node), "…on a different node");
}

#[test]
fn deterministic_replay_of_a_full_sift_run() {
    let run_once = |seed: u64| {
        let scenario = Scenario::single_texture(seed);
        let mut run = scenario.start();
        run.run_until_done(SimTime::from_secs(300));
        let t = run.job_times(0).unwrap();
        (t.perceived(), t.actual(), run.cluster.trace().len())
    };
    assert_eq!(run_once(71), run_once(71));
    assert_ne!(run_once(71).2, 0);
}
