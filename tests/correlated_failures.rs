//! Cross-crate integration tests for the paper's correlated-failure
//! scenarios (§5.2, §6.1, Figures 8 & 10).

use ree::experiments::{figures, Scenario};
use ree::inject::{execute, Campaign, ErrorModel, RunPlan, Target};
use ree::os::Signal;
use ree::sim::SimTime;

#[test]
fn exec_armor_hangs_can_induce_correlated_app_restarts() {
    // §5.2: "22 correlated failures were due to SIGSTOP injections as
    // opposed to 1 correlated failure resulting from an ARMOR crash."
    // SIGSTOP makes the Execution ARMOR unavailable for the full
    // probe-detection window, so blocked SIFT calls stall the MPI pair
    // long enough for the peer's hang detection to fire sometimes.
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::ExecArmor,
        model: ErrorModel::Sigstop,
        timeout: SimTime::from_secs(400),
        net_faults: vec![],
    };
    let results = Campaign::new(&plan).runs(40).seed(4242).collect();
    let injected = results.iter().filter(|r| r.injections > 0).count();
    let recovered = results.iter().filter(|r| r.injections > 0 && r.recovered()).count();
    assert!(injected >= 25, "injected {injected}");
    // The headline property: every correlated failure recovers.
    assert_eq!(recovered, injected, "all SIGSTOP exec-armor runs must recover");
}

#[test]
fn sigstop_correlates_more_than_sigint() {
    // Crash detection via waitpid is nearly instant; hang detection
    // costs a probe round. Correlated failures need long unavailability.
    let mk = |model: ErrorModel| RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::ExecArmor,
        model,
        timeout: SimTime::from_secs(400),
        net_faults: vec![],
    };
    let stop = Campaign::new(&mk(ErrorModel::Sigstop)).runs(60).seed(991).collect();
    let int = Campaign::new(&mk(ErrorModel::Sigint)).runs(60).seed(992).collect();
    let corr = |rs: &[ree::inject::RunResult]| rs.iter().filter(|r| r.correlated).count();
    let stop_corr = corr(&stop);
    let int_corr = corr(&int);
    assert!(
        stop_corr >= int_corr,
        "SIGSTOP correlated {stop_corr} should be >= SIGINT correlated {int_corr}"
    );
}

#[test]
fn ftm_death_during_mpi_launch_aborts_and_recovers() {
    // Figure 8: the slave blocks attaching (its Execution ARMOR cannot
    // learn the pid from the dead FTM), rank 0 times out, the MPI app
    // aborts, and the environment restarts everything once the FTM is
    // recovered.
    let fig8 = figures::fig8(ree::experiments::Effort::Quick, 31);
    assert!(fig8.completed >= fig8.runs * 9 / 10, "{fig8:?}");
    assert!(fig8.aborts_observed > 0, "expected at least one MPI abort: {fig8:?}");
}

#[test]
fn figure10_race_loses_the_armor_without_the_fix() {
    let fig10 = figures::fig10(7);
    assert!(fig10.unrecovered_without_fix, "without the fix the ARMOR must stay dead");
    assert!(fig10.recovered_with_fix, "with the fix the ARMOR must recover");
}

#[test]
fn ftm_killed_mid_run_does_not_disturb_the_application() {
    // §5.2: "The application is decoupled from the FTM's execution after
    // starting, so failures in the FTM do not affect it."
    let scenario = Scenario::single_texture(5);
    let mut run = scenario.start();
    run.run_until(SimTime::from_secs(40));
    let ftm = run.cluster.find_by_name("ftm").expect("ftm alive");
    run.cluster.send_signal(ftm, Signal::Int);
    assert!(run.run_until_done(SimTime::from_secs(400)), "must still complete");
    let times = run.job_times(0).unwrap();
    let actual = times.actual().unwrap().as_secs_f64();
    assert!(actual < 80.0, "actual time {actual} should stay near baseline (74.3)");
    assert_eq!(times.restarts, 0, "no app restart for a mid-run FTM crash");
}

#[test]
fn blocked_sift_calls_pause_and_resume_the_application() {
    // SIGSTOP the rank-0 Execution ARMOR mid-run: the app blocks on its
    // next progress indicator until the ARMOR is recovered and rebinds.
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::ExecArmor,
        model: ErrorModel::Sigstop,
        timeout: SimTime::from_secs(400),
        net_faults: vec![],
    };
    // Over a few runs, completed ones must show a modest slowdown, not a
    // runaway.
    let mut slowdowns = Vec::new();
    for seed in 0..8 {
        let r = execute(&plan, 880 + seed);
        if r.injections > 0 && r.completed && r.restarts == 0 {
            slowdowns.push(r.actual.unwrap_or(0.0) - 74.3);
        }
    }
    assert!(!slowdowns.is_empty());
    for s in &slowdowns {
        assert!(*s >= -1.0 && *s < 60.0, "slowdown {s} out of plausible range");
    }
}
