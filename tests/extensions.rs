//! Integration tests for the paper's proposed extensions (§5.1, §9, §11)
//! that this reproduction implements as configuration knobs.

use ree::experiments::{figures, Effort, Scenario};
use ree::sim::{SimDuration, SimTime};

#[test]
fn interrupt_driven_progress_indicators_halve_detection_latency() {
    // §5.1: "By resetting the timer to expire 20 s from the last progress
    // indicator update, any future hang will be detected within a
    // 20-second window" — versus up to 2× the period for polling.
    let fig6 = figures::fig6(Effort::Quick, 17);
    assert!(fig6.polling.n() >= 3, "need polling samples, got {}", fig6.polling.n());
    assert!(fig6.interrupt.n() >= 3, "need interrupt samples");
    // Polling can exceed one period; interrupt-driven must not (modulo
    // modest protocol slack).
    assert!(
        fig6.polling.max() > fig6.period_s,
        "polling max {} should exceed one period",
        fig6.polling.max()
    );
    assert!(
        fig6.polling.max() <= 2.0 * fig6.period_s + 8.0,
        "polling max {} must stay under ~2 periods",
        fig6.polling.max()
    );
    assert!(
        fig6.interrupt.max() <= fig6.period_s + 8.0,
        "interrupt-driven max {} must stay near one period",
        fig6.interrupt.max()
    );
    assert!(
        fig6.interrupt.mean() < fig6.polling.mean(),
        "interrupt mean {} must beat polling mean {}",
        fig6.interrupt.mean(),
        fig6.polling.mean()
    );
}

#[test]
fn connect_timeout_guard_retries_stuck_setups() {
    // §9 lessons: "a timeout can be placed on the application connecting
    // to the SIFT environment … errors that occur in the critical phase
    // of preparing the SIFT environment for a new application can be
    // detected using this timeout without significant delay."
    let mut scenario = Scenario::single_texture(23);
    scenario.sift.connect_timeout = Some(SimDuration::from_secs(20));
    let mut run = scenario.start();
    // Sabotage the first launch: kill the rank-0 Execution ARMOR's node
    // daemon's install by killing the exec armor just after install.
    run.run_until(SimTime::from_secs(7));
    if let Some(exec) = run.cluster.find_by_name("exec0_0") {
        run.cluster.send_signal(exec, ree::os::Signal::Stop);
    }
    let done = run.run_until_done(SimTime::from_secs(400));
    assert!(done, "the guard must eventually get the app through");
}

#[test]
fn disabling_assertions_still_runs_fault_free() {
    // Ablation knob for Table 9: with assertions off, fault-free
    // behaviour is unchanged.
    let mut scenario = Scenario::single_texture(29);
    scenario.sift.assertions_enabled = false;
    let mut run = scenario.start();
    assert!(run.run_until_done(SimTime::from_secs(300)));
    assert_eq!(run.job_times(0).unwrap().restarts, 0);
}

#[test]
fn precheck_assertions_mode_runs_fault_free() {
    // §11: "detection mechanisms can be incorporated into the common
    // ARMOR infrastructure to preemptively check for errors before state
    // changes occur."
    let mut scenario = Scenario::single_texture(31);
    scenario.sift.precheck_assertions = true;
    let mut run = scenario.start();
    assert!(run.run_until_done(SimTime::from_secs(300)));
}

#[test]
fn two_applications_complete_simultaneously() {
    // §8: the six-node two-application configuration, fault-free.
    let scenario = Scenario::two_apps(37);
    let mut run = scenario.start();
    assert!(run.run_until_done(SimTime::from_secs(700)), "both apps must complete");
    let rover = run.job_times(0).unwrap();
    let otis = run.job_times(1).unwrap();
    let rover_actual = rover.actual().unwrap().as_secs_f64();
    let otis_actual = otis.actual().unwrap().as_secs_f64();
    // Paper shape: Rover ~151 s (two images), OTIS ~191 s.
    assert!((120.0..200.0).contains(&rover_actual), "rover {rover_actual}");
    assert!((150.0..260.0).contains(&otis_actual), "otis {otis_actual}");
    assert!(otis_actual > rover_actual, "OTIS is the longer-running app");
}

#[test]
fn heartbeat_period_trades_perceived_time_for_network_quiet() {
    // Table 5 shape at quick scale: perceived grows with the period.
    let t5 = ree::experiments::table5::run(Effort::Quick, 41);
    assert_eq!(t5.rows.len(), 4);
    let first = t5.rows.first().unwrap();
    let last = t5.rows.last().unwrap();
    assert!(
        last.perceived.mean() > first.perceived.mean(),
        "perceived with 30 s HB ({}) must exceed 5 s HB ({})",
        last.perceived.mean(),
        first.perceived.mean()
    );
    // Actual time stays within a few percent.
    let spread = (last.actual.mean() - first.actual.mean()).abs();
    assert!(spread < 5.0, "actual-time spread {spread} too large");
}
