//! The Table 5 trade-off in miniature: sweep the heartbeat period and
//! watch perceived execution time under FTM crashes grow while actual
//! time stays flat.
//!
//! Run with: `cargo run --release --example heartbeat_tuning`

use ree_experiments::{table5, Effort};

fn main() {
    let table = table5::run(Effort::Quick, 11);
    print!("{}", table.render());
    println!("shape check: perceived grows with the period; actual stays within ~1%");
}
