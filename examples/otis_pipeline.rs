//! The OTIS science pipeline by itself: synthesize split-window thermal
//! frames, retrieve surface temperature through the atmospheric
//! compensation, derive emissivities, and round-trip the lossless
//! compressor.
//!
//! Run with: `cargo run --release --example otis_pipeline`

use ree_apps::compress::{compress, decompress, dequantize, quantize};
use ree_apps::otis::{emissivity_of, split_window_retrieve};
use ree_apps::synth::thermal_frame;

fn main() {
    let size = 64;
    for frame_idx in 0..3u32 {
        let frame = thermal_frame(size, 7, frame_idx);
        let retrieved: Vec<f64> = frame
            .band11
            .iter()
            .zip(&frame.band12)
            .map(|(&b11, &b12)| split_window_retrieve(b11, b12))
            .collect();
        let rmse =
            (retrieved.iter().zip(&frame.truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                / retrieved.len() as f64)
                .sqrt();
        let emissivity_mean =
            retrieved.iter().map(|&t| emissivity_of(t)).sum::<f64>() / retrieved.len() as f64;

        let product = compress(&quantize(&retrieved));
        let raw_bytes = retrieved.len() * 8;
        let back = dequantize(&decompress(&product).expect("lossless"));
        let max_err =
            retrieved.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);

        println!(
            "frame {frame_idx}: retrieval RMSE {rmse:.4} K | mean emissivity {emissivity_mean:.4} | \
             compressed {} -> {} bytes ({:.1}x) | roundtrip max err {max_err:.4} K",
            raw_bytes,
            product.len(),
            raw_bytes as f64 / product.len() as f64
        );
    }
}
