//! Explore the paper's Figure 9 stochastic activity network: how SIFT
//! recovery speed controls whether SIFT failures take the application
//! down with them.
//!
//! Run with: `cargo run --release --example san_correlated_failures`

use ree_san::{solve, ReeModelParams};

fn main() {
    println!("SIFT MTBF 10 min, sweeping recovery time:");
    for recovery_s in [0.5, 5.0, 20.0, 40.0, 80.0] {
        let params = ReeModelParams {
            sift_failure_rate: 1.0 / 600.0,
            sift_recovery_rate: 1.0 / recovery_s,
            ..ReeModelParams::default()
        };
        let sol = solve(&params, 1_500_000.0, 99);
        println!(
            "  recovery {recovery_s:>5.1} s -> app unavailability {:.5}, P(SIFT failure kills app) {:.3}",
            sol.app_unavailability, sol.correlated_failure_probability
        );
    }
    println!("\nthe 30 s application timeout is the cliff: recoveries far below it are free,");
    println!("recoveries near or above it convert SIFT failures into application failures");
}
