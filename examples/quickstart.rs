//! Quickstart: boot the SIFT environment on the 4-node REE testbed, run
//! the Mars Rover texture-analysis program under ARMOR supervision, and
//! print the Table 1 lifecycle as it happens.
//!
//! Run with: `cargo run --release --example quickstart`

use ree_experiments::Scenario;
use ree_sim::SimTime;

fn main() {
    let scenario = Scenario::single_texture(42);
    let mut run = scenario.start();
    let done = run.run_until_done(SimTime::from_secs(300));

    println!("== Table 1 lifecycle trace ==");
    for record in run.cluster.trace().records() {
        let d = record.detail.to_string();
        if d.contains("SCC")
            || d.contains("registering")
            || d.contains("installed")
            || d.contains("accepted submission")
            || d.contains("exits")
            || d.contains("reports slot")
        {
            println!("[{:>9}] {}", record.time.to_string(), d);
        }
    }

    println!();
    println!("completed: {done}");
    let times = run.job_times(0).expect("job record");
    println!(
        "perceived execution time: {:.2} s (submit -> completion report)",
        times.perceived().unwrap().as_secs_f64()
    );
    println!(
        "actual execution time:    {:.2} s (app start -> last rank exit)",
        times.actual().unwrap().as_secs_f64()
    );

    // The science product is on the remote file system; verify it.
    let verdict = ree_apps::verify::verify_texture(
        run.cluster.remote_fs_ref(),
        "texture",
        0,
        0,
        scenario.texture.image_px,
        scenario.texture.tile_px,
        scenario.texture.clusters,
    );
    println!("output verification:      {verdict:?}");
}
