//! The Mars Rover texture-analysis science pipeline by itself — no
//! simulation, no SIFT: synthesize a Martian surface image, run the
//! three directional FFT texture filters, cluster the feature vectors,
//! and compare the segmentation against the ground truth.
//!
//! Run with: `cargo run --release --example mars_rover_pipeline`

use ree_apps::filters::{assemble_features, filter_tiles, NUM_FILTERS};
use ree_apps::kmeans::kmeans;
use ree_apps::synth::{mars_region_of, mars_surface};
use ree_apps::verify::rand_index;

fn main() {
    let size = 128;
    let tile = 8;
    let image = mars_surface(size, 2026);
    println!("synthesized {size}x{size} Martian surface image (4 textured regions)");

    let per_side = size / tile;
    let n_tiles = per_side * per_side;
    let per_filter: Vec<Vec<(usize, f64)>> = (0..NUM_FILTERS)
        .map(|f| {
            let feats = filter_tiles(&image, f, 0..n_tiles, tile);
            println!("filter {f}: {} tile energies extracted", feats.len());
            feats
        })
        .collect();
    let features = assemble_features(&per_filter, n_tiles);

    let clustering = kmeans(&features, NUM_FILTERS, 4, 50);
    println!(
        "k-means: {} tiles -> 4 clusters in {} iterations (inertia {:.2})",
        n_tiles, clustering.iterations, clustering.inertia
    );

    // Compare to ground truth up to label permutation.
    let truth: Vec<u8> = (0..n_tiles)
        .map(|t| {
            let row = (t / per_side) * tile;
            let col = (t % per_side) * tile;
            mars_region_of(size, row, col) as u8
        })
        .collect();
    let labels: Vec<u8> = clustering.labels.iter().map(|&l| l as u8).collect();
    println!("rand index vs ground truth: {:.3}", rand_index(&labels, &truth));
}
