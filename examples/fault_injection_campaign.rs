//! A miniature NFTAPE campaign: SIGSTOP injections into the Execution
//! ARMORs with live per-run classification — the §5 experiment in a few
//! seconds — followed by an adaptive rerun of the same plan that stops
//! itself once the recovery-rate confidence interval is tight enough.
//!
//! Run with: `cargo run --release --example fault_injection_campaign`

use ree_experiments::Scenario;
use ree_inject::{Campaign, ErrorModel, RunPlan, StoppingRule, Target};
use ree_sim::SimTime;

fn main() {
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::ExecArmor,
        model: ErrorModel::Sigstop,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    };
    println!("SIGSTOP campaign against the Execution ARMORs (12 runs):");
    let mut recovered = 0;
    let mut injected = 0;
    let mut correlated = 0;
    // One builder call replaces the hand-rolled seed loop; results come
    // back in seed order, bit-identical for any thread count.
    for (seed, r) in Campaign::new(&plan).runs(12).seed(7000).collect().into_iter().enumerate() {
        let status = if r.injections == 0 {
            "no error injected (injection time after completion)".to_owned()
        } else if r.recovered() {
            format!(
                "recovered; perceived {:.1} s, {} restarts{}",
                r.perceived.unwrap_or(0.0),
                r.restarts,
                if r.correlated { " [correlated failure]" } else { "" }
            )
        } else {
            format!("SYSTEM FAILURE: {:?}", r.system_failure)
        };
        println!("  run {seed:>2}: {status}");
        if r.injections > 0 {
            injected += 1;
            if r.recovered() {
                recovered += 1;
            }
            if r.correlated {
                correlated += 1;
            }
        }
    }
    println!("\n{recovered}/{injected} injected runs recovered; {correlated} correlated failures");

    // The same plan, adaptively: keep injecting in batches of 32 until
    // the 95% Wilson interval on the recovery rate is within ±5 points
    // (or 512 runs are spent), instead of guessing a campaign size.
    let rule = StoppingRule::default().half_width(0.05);
    let report = Campaign::new(&plan).seed(7000).adaptive(&rule);
    println!(
        "adaptive: recovery rate {} after {} runs (target {})",
        report.display_rate(),
        report.runs,
        if report.target_met { "met" } else { "not met — budget exhausted" },
    );
}
