//! A miniature NFTAPE campaign: SIGSTOP injections into the Execution
//! ARMORs with live per-run classification — the §5 experiment in a few
//! seconds.
//!
//! Run with: `cargo run --release --example fault_injection_campaign`

use ree_experiments::Scenario;
use ree_inject::{execute, ErrorModel, RunPlan, Target};
use ree_sim::SimTime;

fn main() {
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::ExecArmor,
        model: ErrorModel::Sigstop,
        timeout: SimTime::from_secs(320),
    };
    println!("SIGSTOP campaign against the Execution ARMORs (12 runs):");
    let mut recovered = 0;
    let mut injected = 0;
    let mut correlated = 0;
    for seed in 0..12 {
        let r = execute(&plan, 7000 + seed);
        let status = if r.injections == 0 {
            "no error injected (injection time after completion)".to_owned()
        } else if r.recovered() {
            format!(
                "recovered; perceived {:.1} s, {} restarts{}",
                r.perceived.unwrap_or(0.0),
                r.restarts,
                if r.correlated { " [correlated failure]" } else { "" }
            )
        } else {
            format!("SYSTEM FAILURE: {:?}", r.system_failure)
        };
        println!("  run {seed:>2}: {status}");
        if r.injections > 0 {
            injected += 1;
            if r.recovered() {
                recovered += 1;
            }
            if r.correlated {
                correlated += 1;
            }
        }
    }
    println!("\n{recovered}/{injected} injected runs recovered; {correlated} correlated failures");
}
