//! # ree — reproduction of the REE SIFT environment evaluation
//!
//! Umbrella crate for the workspace reproducing K. Whisnant, R. K. Iyer,
//! Z. Kalbarczyk, and P. Jones, *An Experimental Evaluation of the REE
//! SIFT Environment for Spaceborne Applications* (CRHC-02-02 / DSN 2002).
//!
//! Re-exports every layer; see the README for the architecture map and
//! `repro` for regenerating the paper's tables.

pub use ree_apps as apps;
pub use ree_armor as armor;
pub use ree_experiments as experiments;
pub use ree_inject as inject;
pub use ree_mc as mc;
pub use ree_mpi as mpi;
pub use ree_net as net;
pub use ree_os as os;
pub use ree_san as san;
pub use ree_sift as sift;
pub use ree_sim as sim;
pub use ree_stats as stats;
